(* An ECho process: event channels with channel-based subscription
   (paper, Section 4.1).

   A channel lives at its creator, which tracks membership and forwards
   events from sources to sinks.  Joining sends a ChannelOpenRequest to the
   creator; the creator answers with a ChannelOpenResponse in its *own*
   protocol version — new nodes always speak the new protocol, attaching the
   Figure 5 retro-transformation as meta-data so that old (v1.0) subscribers
   morph the response on receipt, none the wiser. *)

open Pbio

type version =
  | V1
  | V2

let pp_version ppf = function
  | V1 -> Fmt.string ppf "ECho-1.0"
  | V2 -> Fmt.string ppf "ECho-2.0"

type member = {
  contact : Transport.Contact.t;
  id : int;
  is_source : bool;
  is_sink : bool;
}

type channel_state = {
  name : string;
  mutable members : member list; (* join order *)
  mutable next_id : int;
}

type subscription = {
  creator : Transport.Contact.t;
  mutable known_members : member list;
}

type t = {
  version : version;
  endpoint : Transport.Conn.endpoint;
  receiver : Morph.Receiver.t;
  metrics : Obs.t;
  m_received : Obs.Counter.h;
  m_forwarded : Obs.Counter.h;
  m_responses : Obs.Counter.h;
  m_rejected : Obs.Counter.h;
  m_evicted : Obs.Counter.h;
  channels : (string, channel_state) Hashtbl.t;
  subs : (string, subscription) Hashtbl.t;
  event_handlers : (string, (string -> unit) list ref) Hashtbl.t;
  mutable seq : int;
  mutable events_received : int;
  mutable events_forwarded : int;
  mutable responses_received : int;
  mutable rejected : int;
  mutable evicted : int;
}

let contact t = Transport.Conn.contact t.endpoint

let version t = t.version

(* --- outgoing messages ----------------------------------------------------- *)

let request_meta = Meta.plain Wire_formats.channel_open_request

let event_meta = function
  | V1 -> Wire_formats.event_v1_meta
  | V2 -> Wire_formats.event_v2_meta

let response_meta t =
  match t.version with
  | V1 -> Wire_formats.response_v1_meta
  | V2 -> Wire_formats.response_v2_meta

let member_value_v2 (m : member) : Value.t =
  Wire_formats.member_v2_value ~host:m.contact.Transport.Contact.host
    ~port:m.contact.Transport.Contact.port ~id:m.id ~is_source:m.is_source
    ~is_sink:m.is_sink

let response_value t (ch : channel_state) : Value.t =
  match t.version with
  | V2 ->
    Value.record
      [
        ("channel", Value.String ch.name);
        ("member_count", Value.Int (List.length ch.members));
        ("member_list", Value.array_of_list (List.map member_value_v2 ch.members));
      ]
  | V1 ->
    let entry (m : member) =
      Wire_formats.member_v1_value ~host:m.contact.Transport.Contact.host
        ~port:m.contact.Transport.Contact.port ~id:m.id
    in
    let srcs = List.filter (fun m -> m.is_source) ch.members in
    let sinks = List.filter (fun m -> m.is_sink) ch.members in
    Value.record
      [
        ("channel", Value.String ch.name);
        ("member_count", Value.Int (List.length ch.members));
        ("member_list", Value.array_of_list (List.map entry ch.members));
        ("src_count", Value.Int (List.length srcs));
        ("src_list", Value.array_of_list (List.map entry srcs));
        ("sink_count", Value.Int (List.length sinks));
        ("sink_list", Value.array_of_list (List.map entry sinks));
      ]

(* --- incoming message handlers --------------------------------------------- *)

let member_of_value (v : Value.t) ~(is_source : bool) ~(is_sink : bool) : member =
  let info = Value.get_field v "info" in
  {
    contact =
      Transport.Contact.make
        (Value.to_string_exn (Value.get_field info "host"))
        (Value.to_int (Value.get_field info "port"));
    id = Value.to_int (Value.get_field v "ID");
    is_source;
    is_sink;
  }

let handle_request t (v : Value.t) : unit =
  let channel = Value.to_string_exn (Value.get_field v "channel") in
  match Hashtbl.find_opt t.channels channel with
  | None ->
    Logs.debug (fun m -> m "%a: open request for unknown channel %S"
                   Transport.Contact.pp (contact t) channel)
  | Some ch ->
    let info = Value.get_field v "requester" in
    let requester =
      Transport.Contact.make
        (Value.to_string_exn (Value.get_field info "host"))
        (Value.to_int (Value.get_field info "port"))
    in
    let m =
      {
        contact = requester;
        id = ch.next_id;
        is_source = Value.to_bool (Value.get_field v "as_source");
        is_sink = Value.to_bool (Value.get_field v "as_sink");
      }
    in
    ch.next_id <- ch.next_id + 1;
    (* idempotent re-join: replace any previous entry for this contact *)
    ch.members <-
      List.filter (fun m' -> not (Transport.Contact.equal m'.contact requester)) ch.members
      @ [ m ];
    Transport.Conn.send t.endpoint ~dst:requester (response_meta t) (response_value t ch)

let members_of_response_v1 (v : Value.t) : member list =
  let member_list = Value.get_field v "member_list" in
  let in_list field m =
    let l = Value.get_field v field in
    let rec go i =
      if i >= Value.array_len l then false
      else if Value.to_int (Value.get_field (Value.array_get l i) "ID")
              = Value.to_int (Value.get_field m "ID")
      then true
      else go (i + 1)
    in
    go 0
  in
  List.init (Value.array_len member_list) (fun i ->
      let mv = Value.array_get member_list i in
      member_of_value mv ~is_source:(in_list "src_list" mv) ~is_sink:(in_list "sink_list" mv))

let members_of_response_v2 (v : Value.t) : member list =
  let member_list = Value.get_field v "member_list" in
  List.init (Value.array_len member_list) (fun i ->
      let mv = Value.array_get member_list i in
      member_of_value mv
        ~is_source:(Value.to_bool (Value.get_field mv "is_source"))
        ~is_sink:(Value.to_bool (Value.get_field mv "is_sink")))

let handle_response t (v : Value.t) : unit =
  let channel = Value.to_string_exn (Value.get_field v "channel") in
  t.responses_received <- t.responses_received + 1;
  Obs.Counter.incr t.m_responses;
  match Hashtbl.find_opt t.subs channel with
  | None ->
    Logs.debug (fun m -> m "%a: unexpected response for %S"
                   Transport.Contact.pp (contact t) channel)
  | Some sub ->
    sub.known_members <-
      (match t.version with
       | V1 -> members_of_response_v1 v
       | V2 -> members_of_response_v2 v)

let handle_event t (v : Value.t) : unit =
  let channel = Value.to_string_exn (Value.get_field v "channel") in
  (* tag the delivery span (opened around Receiver.deliver) with the
     channel so traces can be filtered per channel *)
  Obs.Trace.add_attr t.metrics "channel" channel;
  let payload = Value.to_string_exn (Value.get_field v "payload") in
  let origin = Value.get_field v "origin" in
  let origin_contact =
    Transport.Contact.make
      (Value.to_string_exn (Value.get_field origin "host"))
      (Value.to_int (Value.get_field origin "port"))
  in
  (* Creator: forward to sink members (not back to the origin). *)
  (match Hashtbl.find_opt t.channels channel with
   | Some ch ->
     List.iter
       (fun m ->
          if m.is_sink && not (Transport.Contact.equal m.contact origin_contact) then begin
            t.events_forwarded <- t.events_forwarded + 1;
            Obs.Counter.incr t.m_forwarded;
            (* the forwarded value is in this node's own event format: a
               newer creator re-ships the v2 form (with its transformation),
               an older one the morphed v1 form it received *)
            Transport.Conn.send t.endpoint ~dst:m.contact (event_meta t.version) v
          end)
       ch.members
   | None -> ());
  (* Local sink: deliver to subscribers. *)
  match Hashtbl.find_opt t.event_handlers channel with
  | Some handlers ->
    t.events_received <- t.events_received + 1;
    Obs.Counter.incr t.m_received;
    (* per-channel delivery count; make is get-or-create, so the handle is
       shared across events of the same channel *)
    Obs.Counter.incr
      (Obs.Counter.make t.metrics ("echo.channel." ^ channel ^ ".delivered"));
    List.iter (fun f -> f payload) !handlers
  | None -> ()

(* --- construction ----------------------------------------------------------- *)

(* A member whose reliable endpoint gave up on it (retransmit budget
   exhausted — the missed-ack heartbeat) is presumed dead and evicted from
   every channel this node owns, so the creator stops burning forwarding
   and retransmission work on a sink that will never ack. *)
let evict_member t (dead : Transport.Contact.t) : unit =
  Hashtbl.iter
    (fun _ ch ->
       let before = List.length ch.members in
       ch.members <-
         List.filter
           (fun m -> not (Transport.Contact.equal m.contact dead))
           ch.members;
       let gone = before - List.length ch.members in
       if gone > 0 then begin
         t.evicted <- t.evicted + gone;
         Obs.Counter.add t.m_evicted gone;
         Logs.warn (fun m ->
             m "%a: evicting unresponsive member %a from channel %S"
               Transport.Contact.pp (contact t) Transport.Contact.pp dead
               ch.name)
       end)
    t.channels

let create ?(thresholds = Morph.Maxmatch.default_thresholds) ?(engine = Morph.Xform.Compiled)
    ?(reliable = false) ?(metrics = Obs.null) ?ctx (net : Transport.Netsim.t)
    ~(host : string) ~(port : int) (version : version) : t =
  let contact = Transport.Contact.make host port in
  let endpoint = Transport.Conn.create ~reliable ~metrics ?ctx net contact in
  let receiver =
    Morph.Receiver.create
      ~config:(Morph.Receiver.Config.v ~thresholds ~engine ~metrics ?ctx ())
      ()
  in
  let t =
    {
      version;
      endpoint;
      receiver;
      metrics;
      m_received = Obs.Counter.make metrics "echo.events_received";
      m_forwarded = Obs.Counter.make metrics "echo.events_forwarded";
      m_responses = Obs.Counter.make metrics "echo.responses_received";
      m_rejected = Obs.Counter.make metrics "echo.rejected";
      m_evicted = Obs.Counter.make metrics "echo.evicted";
      channels = Hashtbl.create 8;
      subs = Hashtbl.create 8;
      event_handlers = Hashtbl.create 8;
      seq = 0;
      events_received = 0;
      events_forwarded = 0;
      responses_received = 0;
      rejected = 0;
      evicted = 0;
    }
  in
  Transport.Conn.set_on_peer_failure endpoint (fun dead -> evict_member t dead);
  Morph.Receiver.register receiver Wire_formats.channel_open_request (handle_request t);
  Morph.Receiver.register receiver
    (match version with
     | V1 -> Wire_formats.channel_open_response_v1
     | V2 -> Wire_formats.channel_open_response_v2)
    (handle_response t);
  Morph.Receiver.register receiver
    (match version with
     | V1 -> Wire_formats.event_msg
     | V2 -> Wire_formats.event_msg_v2)
    (handle_event t);
  (* raw-bytes delivery: the receiver decodes, running the fused
     decode->morph plan when the cached pipeline allows it *)
  Transport.Conn.set_wire_handler endpoint (fun ~src meta message ->
      match
        Obs.with_span metrics "echo.deliver" (fun () ->
            Morph.Receiver.deliver_wire receiver meta message)
      with
      | Morph.Receiver.Delivered _ | Morph.Receiver.Defaulted -> ()
      | Morph.Receiver.Rejected reason ->
        t.rejected <- t.rejected + 1;
        Obs.Counter.incr t.m_rejected;
        Logs.warn (fun m ->
            m "%a: rejected message from %a: %s" Transport.Contact.pp contact
              Transport.Contact.pp src reason));
  t

(* --- public operations ------------------------------------------------------- *)

let create_channel t (name : string) ~(as_source : bool) ~(as_sink : bool) : unit =
  if Hashtbl.mem t.channels name then invalid_arg ("channel exists: " ^ name);
  let self = { contact = contact t; id = 0; is_source = as_source; is_sink = as_sink } in
  Hashtbl.replace t.channels name { name; members = [ self ]; next_id = 1 }

let join t ~(creator : Transport.Contact.t) (name : string) ~(as_source : bool)
    ~(as_sink : bool) : unit =
  Hashtbl.replace t.subs name { creator; known_members = [] };
  let self = contact t in
  Transport.Conn.send t.endpoint ~dst:creator request_meta
    (Wire_formats.request_value ~channel:name ~host:self.Transport.Contact.host
       ~port:self.Transport.Contact.port ~id:0 ~as_source ~as_sink)

let subscribe_events t (name : string) (f : string -> unit) : unit =
  let handlers =
    match Hashtbl.find_opt t.event_handlers name with
    | Some hs -> hs
    | None ->
      let hs = ref [] in
      Hashtbl.replace t.event_handlers name hs;
      hs
  in
  handlers := !handlers @ [ f ]

let publish ?(priority = 0) t (name : string) (payload : string) : unit =
  t.seq <- t.seq + 1;
  let self = contact t in
  let origin = (self.Transport.Contact.host, self.Transport.Contact.port) in
  let ev =
    match t.version with
    | V1 -> Wire_formats.event_value ~channel:name ~seq:t.seq ~origin ~payload
    | V2 ->
      Wire_formats.event_v2_value ~channel:name ~seq:t.seq ~origin ~priority ~payload
  in
  if Hashtbl.mem t.channels name then
    (* we are the creator: forward directly *)
    handle_event t ev
  else
    match Hashtbl.find_opt t.subs name with
    | Some sub ->
      Transport.Conn.send t.endpoint ~dst:sub.creator (event_meta t.version) ev
    | None -> invalid_arg ("publish: not a member of channel " ^ name)

(* --- introspection ------------------------------------------------------------ *)

let channel_members t (name : string) : member list =
  match Hashtbl.find_opt t.channels name with
  | Some ch -> ch.members
  | None -> []

let known_members t (name : string) : member list =
  match Hashtbl.find_opt t.subs name with
  | Some s -> s.known_members
  | None -> []

let receiver t = t.receiver
let endpoint t = t.endpoint

type counters = {
  events_received : int;
  events_forwarded : int;
  responses_received : int;
  rejected : int;
  evicted : int;
}

let counters (t : t) : counters =
  {
    events_received = t.events_received;
    events_forwarded = t.events_forwarded;
    responses_received = t.responses_received;
    rejected = t.rejected;
    evicted = t.evicted;
  }
