(* ECho: a channel-based publish/subscribe event-delivery middleware in the
   style of the system the paper evolves (Section 4.1).

   {!Wire_formats} holds the protocol formats of both ECho versions,
   including the v2.0 -> v1.0 ChannelOpenResponse retro-transformation of
   Figure 5; {!Node} implements processes, channels and event routing over
   the simulated network. *)

module Wire_formats = Wire_formats
module Node = Node
module Fanout = Fanout

(* Convenience: run the network until every in-flight message is handled,
   returning the number of deliveries. *)
let settle (net : Transport.Netsim.t) : int =
  (Transport.Netsim.run net).Transport.Netsim.steps
