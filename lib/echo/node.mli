(** An ECho process: event channels with channel-based subscription
    (paper, Section 4.1).

    A channel lives at its creator, which tracks membership and forwards
    events from sources to sinks.  Joining sends a ChannelOpenRequest to
    the creator; the creator answers with a ChannelOpenResponse in its
    {e own} protocol version — new nodes always speak the new protocol,
    attaching the Figure 5 retro-transformation as meta-data so that old
    (v1.0) subscribers morph the response on receipt, none the wiser. *)

type version =
  | V1  (** ECho 1.0: three-list ChannelOpenResponse (Figure 4.a) *)
  | V2  (** ECho 2.0: single list with role booleans (Figure 4.b) *)

val pp_version : Format.formatter -> version -> unit

type member = {
  contact : Transport.Contact.t;
  id : int;
  is_source : bool;
  is_sink : bool;
}

type t

(** Create a process on the network.  [thresholds] and [engine] configure
    its morphing receiver.  [reliable] runs the node's endpoint under the
    connection layer's ack + retransmit protocol; a member whose retransmit
    budget is exhausted (missed acks) is presumed dead and evicted from
    channels this node owns (see docs/FAULTS.md).  [metrics] receives the
    node's [echo.*] counters (including per-channel
    [echo.channel.<name>.delivered]) and is threaded through to the
    endpoint's [conn.*] and the receiver's [receiver.*] instruments.
    [ctx] supplies the codec plan caches for the node's endpoint and
    receiver; omitted, the process-global caches are used
    (docs/CONCURRENCY.md). *)
val create :
  ?thresholds:Morph.Maxmatch.thresholds ->
  ?engine:Morph.Xform.engine ->
  ?reliable:bool ->
  ?metrics:Obs.t ->
  ?ctx:Pbio.Ctx.t ->
  Transport.Netsim.t ->
  host:string ->
  port:int ->
  version ->
  t

val contact : t -> Transport.Contact.t
val version : t -> version

(** Create a channel at this node, with this node's own roles. *)
val create_channel : t -> string -> as_source:bool -> as_sink:bool -> unit

(** Subscribe to a channel owned by [creator]; the response arrives (and is
    morphed if necessary) once the network settles. *)
val join :
  t -> creator:Transport.Contact.t -> string -> as_source:bool -> as_sink:bool -> unit

(** Register a callback for event payloads delivered on a channel. *)
val subscribe_events : t -> string -> (string -> unit) -> unit

(** Publish an event (in this node's own event-format version); routed
    through the channel's creator to all sinks.  A positive [priority] on a
    2.0 publisher is folded into the payload text for 1.0 sinks by the
    attached retro-transformation. *)
val publish : ?priority:int -> t -> string -> string -> unit

(** {1 Introspection} *)

(** Membership as tracked by the creator. *)
val channel_members : t -> string -> member list

(** Membership as learned from the (possibly morphed) response. *)
val known_members : t -> string -> member list

val receiver : t -> Morph.Receiver.t

(** The node's transport endpoint, for fault-injection tests and stats. *)
val endpoint : t -> Transport.Conn.endpoint

type counters = {
  events_received : int;
  events_forwarded : int;
  responses_received : int;
  rejected : int;
  evicted : int;  (** members removed after their retransmit budget ran out *)
}

val counters : t -> counters
