(** Sharded event fan-out: run a batch of wire messages through many
    sinks, spreading the {e sinks} (never the messages) across a
    {!Morph.Pool}.

    Each sink is owned by exactly one domain per batch and sees messages
    in order, so per-sink receiver state needs no locking and the outcome
    matrix is a pure function of (sinks, messages) — identical with no
    pool, a width-1 pool, or any wider pool.  Give each sink's receiver a
    {!Pbio.Ctx.t} (its own, or one shared context — the plan caches are
    domain-safe) so wire decodes do not contend on the process-global
    caches.  See docs/CONCURRENCY.md. *)

open Pbio

type sink = {
  name : string;
  receiver : Morph.Receiver.t;
}

val sink : name:string -> Morph.Receiver.t -> sink

(** [deliver_batch ?pool ~sinks meta messages] returns the outcome
    matrix: element [(s, m)] is sink [s]'s outcome for message [m].
    Without [pool] the fan-out runs inline on the calling domain. *)
val deliver_batch :
  ?pool:Morph.Pool.t ->
  sinks:sink array ->
  Meta.format_meta ->
  string array ->
  Morph.Receiver.outcome array array

(** Zero-copy variant of {!deliver_batch}: each sink delivers through
    [Morph.Receiver.deliver_wire_lazy].  The slices are shared read-only
    across the pool; each worker domain draws record skeletons from its
    own ([Domain.DLS]-backed) arena, so outcomes remain a pure function
    of (sinks, messages) at any pool width. *)
val deliver_batch_lazy :
  ?pool:Morph.Pool.t ->
  sinks:sink array ->
  Meta.format_meta ->
  Slice.t array ->
  Morph.Receiver.outcome array array

(** Number of [Delivered] outcomes in a matrix. *)
val delivered_count : Morph.Receiver.outcome array array -> int
