(* Frames carried by the simulated network.

   A frame is one of:
     - Meta: out-of-band format meta-data for a sender-local format id —
       pushed once per (peer, format) before the first Data frame;
     - Data: a PBIO-encoded record (complete wire message, header included);
     - Meta_request: ask a peer to (re)send meta-data for an id, used on
       recovery paths (e.g. a receiver restarted and lost its format cache).

   Layout: 1-byte kind, 4-byte LE format id, 4-byte LE body length, body. *)

type frame =
  | Meta of { format_id : int; meta : string }
  | Data of { format_id : int; message : string }
  | Meta_request of { format_id : int }

exception Frame_error of string

let frame_error fmt = Fmt.kstr (fun s -> raise (Frame_error s)) fmt

let kind_byte = function
  | Meta _ -> '\x01'
  | Data _ -> '\x02'
  | Meta_request _ -> '\x03'

let encode (f : frame) : string =
  let format_id, body =
    match f with
    | Meta { format_id; meta } -> (format_id, meta)
    | Data { format_id; message } -> (format_id, message)
    | Meta_request { format_id } -> (format_id, "")
  in
  let buf = Buffer.create (9 + String.length body) in
  Buffer.add_char buf (kind_byte f);
  Buffer.add_int32_le buf (Int32.of_int format_id);
  Buffer.add_int32_le buf (Int32.of_int (String.length body));
  Buffer.add_string buf body;
  Buffer.contents buf

let decode (s : string) : frame =
  if String.length s < 9 then frame_error "short frame (%d bytes)" (String.length s);
  let format_id = Int32.to_int (String.get_int32_le s 1) in
  let len = Int32.to_int (String.get_int32_le s 5) in
  if len < 0 || 9 + len <> String.length s then
    frame_error "frame length %d does not match size %d" len (String.length s);
  let body = String.sub s 9 len in
  match s.[0] with
  | '\x01' -> Meta { format_id; meta = body }
  | '\x02' -> Data { format_id; message = body }
  | '\x03' -> Meta_request { format_id }
  | c -> frame_error "unknown frame kind %C" c

(* Total variant for untrusted input. *)
let decode_result (s : string) : (frame, string) result =
  match decode s with
  | f -> Ok f
  | exception Frame_error msg -> Error msg

let overhead = 9
