(* Frames carried by the simulated network.

   A frame is one of:
     - Meta: out-of-band format meta-data for a sender-local format id —
       pushed once per (peer, format) before the first Data frame;
     - Data: a PBIO-encoded record (complete wire message, header included);
     - Meta_request: ask a peer to (re)send meta-data for an id, used on
       recovery paths (e.g. a receiver restarted and lost its format cache);
     - Ack: acknowledge receipt of a sequence-numbered frame;
     - Reliable: a sequence-numbered envelope around a Meta/Data/Meta_request
       frame (possibly Traced), used by endpoints running the ack +
       retransmit protocol over a lossy network;
     - Traced: a trace-context envelope around a Meta/Data/Meta_request
       frame, carrying the sender's trace id and open span so the receiver
       can continue the distributed trace (see Obs.Trace);
     - Described: the gateway's self-describing envelope around a
       Meta/Data/Meta_request frame — tenant id, format fingerprint and a
       delivery deadline, so a multi-tenant gateway can route, admit and
       shed before decoding the body (see docs/GATEWAY.md).

   Layout: 1-byte kind, 4-byte LE id field (format id, or sequence number
   for Ack/Reliable; 0 for Traced; tenant id for Described), 4-byte LE
   body length, body.  A Reliable body is the complete encoding of the
   inner frame; a Traced body is 8-byte LE trace id, 8-byte LE parent
   span id, then the complete encoding of the inner frame; a Described
   body is 8-byte LE format fingerprint, 8-byte LE deadline (ns of
   simulated time; 0 = none), then the complete encoding of the inner
   frame.  Nesting Reliable or Ack inside an envelope is a protocol
   error, as is Traced inside Traced or Described inside Described; the
   legal compositions are Reliable around Traced or Described, and
   Traced around Described (reliability is a hop property, tracing an
   end-to-end one, and the description belongs to the innermost
   payload). *)

type frame =
  | Meta of { format_id : int; meta : string }
  | Data of { format_id : int; message : string }
  | Meta_request of { format_id : int }
  | Ack of { seq : int }
  | Reliable of { seq : int; frame : frame }
  | Traced of { trace_id : int; parent_span : int; frame : frame }
  | Described of { tenant : int; fingerprint : int; deadline_ns : int; frame : frame }

exception Frame_error of string

let frame_error fmt = Fmt.kstr (fun s -> raise (Frame_error s)) fmt

let kind_byte = function
  | Meta _ -> '\x01'
  | Data _ -> '\x02'
  | Meta_request _ -> '\x03'
  | Ack _ -> '\x04'
  | Reliable _ -> '\x05'
  | Traced _ -> '\x06'
  | Described _ -> '\x07'

let add_int64_le buf n = Buffer.add_int64_le buf (Int64.of_int n)

let rec encode (f : frame) : string =
  let id_field, body =
    match f with
    | Meta { format_id; meta } -> (format_id, meta)
    | Data { format_id; message } -> (format_id, message)
    | Meta_request { format_id } -> (format_id, "")
    | Ack { seq } -> (seq, "")
    | Reliable { seq; frame } ->
      (match frame with
       | Ack _ | Reliable _ ->
         frame_error "cannot nest an %s frame inside a reliable envelope"
           (match frame with Ack _ -> "ack" | _ -> "reliable")
       | _ -> (seq, encode frame))
    | Traced { trace_id; parent_span; frame } ->
      (match frame with
       | Ack _ | Reliable _ | Traced _ ->
         frame_error "cannot nest a %s frame inside a traced envelope"
           (match frame with
            | Ack _ -> "ack"
            | Reliable _ -> "reliable"
            | _ -> "traced")
       | _ ->
         if trace_id < 0 || parent_span < 0 then
           frame_error "negative trace context (%d, %d)" trace_id parent_span;
         let b = Buffer.create 32 in
         add_int64_le b trace_id;
         add_int64_le b parent_span;
         Buffer.add_string b (encode frame);
         (0, Buffer.contents b))
    | Described { tenant; fingerprint; deadline_ns; frame } ->
      (match frame with
       | Ack _ | Reliable _ | Traced _ | Described _ ->
         frame_error "cannot nest a %s frame inside a described envelope"
           (match frame with
            | Ack _ -> "ack"
            | Reliable _ -> "reliable"
            | Traced _ -> "traced"
            | _ -> "described")
       | _ ->
         if tenant < 0 then frame_error "negative tenant id %d" tenant;
         if fingerprint < 0 || deadline_ns < 0 then
           frame_error "negative description (%d, %d)" fingerprint deadline_ns;
         let b = Buffer.create 32 in
         add_int64_le b fingerprint;
         add_int64_le b deadline_ns;
         Buffer.add_string b (encode frame);
         (tenant, Buffer.contents b))
  in
  let buf = Buffer.create (9 + String.length body) in
  Buffer.add_char buf (kind_byte f);
  Buffer.add_int32_le buf (Int32.of_int id_field);
  Buffer.add_int32_le buf (Int32.of_int (String.length body));
  Buffer.add_string buf body;
  Buffer.contents buf

let rec decode_exn (s : string) : frame =
  if String.length s < 9 then frame_error "short frame (%d bytes)" (String.length s);
  let id_field = Int32.to_int (String.get_int32_le s 1) in
  let len = Int32.to_int (String.get_int32_le s 5) in
  if len < 0 || 9 + len <> String.length s then
    frame_error "frame length %d does not match size %d" len (String.length s);
  let body = String.sub s 9 len in
  match s.[0] with
  | '\x01' -> Meta { format_id = id_field; meta = body }
  | '\x02' -> Data { format_id = id_field; message = body }
  | '\x03' -> Meta_request { format_id = id_field }
  | '\x04' ->
    if len <> 0 then frame_error "ack frame with a %d-byte body" len;
    if id_field < 0 then frame_error "negative ack sequence number %d" id_field;
    Ack { seq = id_field }
  | '\x05' ->
    if id_field < 0 then frame_error "negative sequence number %d" id_field;
    (match decode_exn body with
     | Ack _ | Reliable _ -> frame_error "nested reliable envelope"
     | inner -> Reliable { seq = id_field; frame = inner })
  | '\x06' ->
    if len < 16 then frame_error "traced frame with a %d-byte body" len;
    let trace_id = Int64.to_int (String.get_int64_le body 0) in
    let parent_span = Int64.to_int (String.get_int64_le body 8) in
    if trace_id < 0 || parent_span < 0 then
      frame_error "negative trace context (%d, %d)" trace_id parent_span;
    (match decode_exn (String.sub body 16 (len - 16)) with
     | Ack _ | Reliable _ | Traced _ -> frame_error "nested traced envelope"
     | inner -> Traced { trace_id; parent_span; frame = inner })
  | '\x07' ->
    if len < 16 then frame_error "described frame with a %d-byte body" len;
    if id_field < 0 then frame_error "negative tenant id %d" id_field;
    let fingerprint = Int64.to_int (String.get_int64_le body 0) in
    let deadline_ns = Int64.to_int (String.get_int64_le body 8) in
    if fingerprint < 0 || deadline_ns < 0 then
      frame_error "negative description (%d, %d)" fingerprint deadline_ns;
    (match decode_exn (String.sub body 16 (len - 16)) with
     | Ack _ | Reliable _ | Traced _ | Described _ ->
       frame_error "nested described envelope"
     | inner ->
       Described { tenant = id_field; fingerprint; deadline_ns; frame = inner })
  | c -> frame_error "unknown frame kind %C" c

(* Total variant for untrusted input. *)
let decode (s : string) : (frame, Pbio.Err.t) result =
  match decode_exn s with
  | f -> Ok f
  | exception Frame_error msg -> Error (`Frame msg)

(* Zero-copy view of a received frame.  The hot path — a top-level Data
   frame, i.e. every payload byte of a steady-state exchange — carves
   the message out of the receive buffer as a sub-slice; everything else
   (meta, control, envelopes) is cold and falls back to the copying
   string decoder.  Validation of the header fields matches [decode_exn]
   exactly, error strings included. *)
type slice_view =
  | Sdata of { format_id : int; message : Pbio.Slice.t }
  | Sframe of frame

let decode_slice (s : Pbio.Slice.t) : (slice_view, Pbio.Err.t) result =
  let n = Pbio.Slice.length s in
  if n >= 9 && Pbio.Slice.get s 0 = '\x02' then begin
    let format_id = Pbio.Slice.i32_le s 1 in
    let len = Pbio.Slice.i32_le s 5 in
    if len < 0 || 9 + len <> n then
      Error (`Frame (Printf.sprintf "frame length %d does not match size %d" len n))
    else Ok (Sdata { format_id; message = Pbio.Slice.sub s ~pos:9 ~len })
  end
  else
    match decode (Pbio.Slice.to_string s) with
    | Ok f -> Ok (Sframe f)
    | Error _ as e -> e

let overhead = 9
