(** Frames carried by the simulated network: out-of-band format meta-data,
    PBIO-encoded records, and meta-data re-requests for recovery. *)

type frame =
  | Meta of {
      format_id : int;
      meta : string;  (** {!Pbio.Meta.encode} output *)
    }
  | Data of {
      format_id : int;
      message : string;  (** a complete {!Pbio.Wire.encode} message *)
    }
  | Meta_request of { format_id : int }

exception Frame_error of string

val encode : frame -> string

(** Raises {!Frame_error} on malformed frames. *)
val decode : string -> frame

(** Total variant: malformed frames come back as [Error]. *)
val decode_result : string -> (frame, string) result

(** Per-frame byte overhead. *)
val overhead : int
