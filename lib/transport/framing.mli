(** Frames carried by the simulated network: out-of-band format meta-data,
    PBIO-encoded records, meta-data re-requests for recovery, and the
    sequence-numbered envelope + acknowledgement used by reliable
    endpoints. *)

type frame =
  | Meta of {
      format_id : int;
      meta : string;  (** {!Pbio.Meta.encode} output *)
    }
  | Data of {
      format_id : int;
      message : string;  (** a complete {!Pbio.Wire.encode} message *)
    }
  | Meta_request of { format_id : int }
  | Ack of { seq : int }  (** acknowledges the {!Reliable} frame [seq] *)
  | Reliable of {
      seq : int;
      frame : frame;
          (** the enveloped frame; never itself [Reliable] or [Ack] *)
    }

exception Frame_error of string

(** Raises {!Frame_error} when asked to nest [Reliable]/[Ack] inside a
    reliable envelope. *)
val encode : frame -> string

(** Total on untrusted input: malformed frames are [Error (`Frame _)]. *)
val decode : string -> (frame, Pbio.Err.t) result

val decode_exn : string -> frame
[@@deprecated "use decode"]
(** Raises {!Frame_error} on malformed frames. *)

val decode_result : string -> (frame, string) result
[@@deprecated "use decode"]

(** Per-frame byte overhead. *)
val overhead : int
