(** Frames carried by the simulated network: out-of-band format meta-data,
    PBIO-encoded records, meta-data re-requests for recovery, the
    sequence-numbered envelope + acknowledgement used by reliable
    endpoints, and the trace-context envelope used to propagate
    {!Obs.Trace} contexts across the wire. *)

type frame =
  | Meta of {
      format_id : int;
      meta : string;  (** {!Pbio.Meta.encode} output *)
    }
  | Data of {
      format_id : int;
      message : string;  (** a complete {!Pbio.Wire.encode} message *)
    }
  | Meta_request of { format_id : int }
  | Ack of { seq : int }  (** acknowledges the {!Reliable} frame [seq] *)
  | Reliable of {
      seq : int;
      frame : frame;
          (** the enveloped frame; never itself [Reliable] or [Ack], but
              possibly [Traced] or [Described] *)
    }
  | Traced of {
      trace_id : int;
      parent_span : int;
      frame : frame;
          (** the enveloped frame; never itself [Reliable], [Traced] or
              [Ack], but possibly [Described] *)
    }
      (** Carries the sender's {!Obs.Trace.ctx} so the receiver parents
          its delivery spans under the sender's open span.  [Reliable]
          composes {e around} [Traced], never inside it: reliability is a
          per-hop concern, tracing an end-to-end one. *)
  | Described of {
      tenant : int;
      fingerprint : int;
          (** the sender's fingerprint of the inner message's wire format
              (see [Gateway.fingerprint]); lets the gateway route to a
              cached plan without decoding the body *)
      deadline_ns : int;
          (** absolute delivery deadline in nanoseconds of simulated time;
              [0] means no deadline.  Work past its deadline is shed
              before decode. *)
      frame : frame;  (** the enveloped frame; never itself an envelope or [Ack] *)
    }
      (** The gateway's self-describing envelope (docs/GATEWAY.md):
          enough routing and admission context — tenant, format
          fingerprint, deadline — to admit, shed or route a message
          without touching its payload.  [Reliable] and [Traced] may
          compose around [Described], never inside it. *)

exception Frame_error of string

(** Raises {!Frame_error} when asked to nest [Reliable]/[Ack] inside a
    reliable envelope, an envelope or [Ack] inside a traced or described
    envelope, or encode a negative trace context / tenant / fingerprint /
    deadline. *)
val encode : frame -> string

(** Total on untrusted input: malformed frames are [Error (`Frame _)]. *)
val decode : string -> (frame, Pbio.Err.t) result

(** Zero-copy view of a received frame: {!Sdata} aliases the receive
    buffer (a sub-slice, no copy) for the hot top-level [Data] case;
    every other frame kind decodes through the copying {!decode} and
    comes back as {!Sframe}. *)
type slice_view =
  | Sdata of {
      format_id : int;
      message : Pbio.Slice.t;  (** borrows the buffer behind the input slice *)
    }
  | Sframe of frame

(** Same validation and error strings as {!decode}. *)
val decode_slice : Pbio.Slice.t -> (slice_view, Pbio.Err.t) result

(** Per-frame byte overhead. *)
val overhead : int
