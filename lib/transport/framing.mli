(** Frames carried by the simulated network: out-of-band format meta-data,
    PBIO-encoded records, meta-data re-requests for recovery, the
    sequence-numbered envelope + acknowledgement used by reliable
    endpoints, and the trace-context envelope used to propagate
    {!Obs.Trace} contexts across the wire. *)

type frame =
  | Meta of {
      format_id : int;
      meta : string;  (** {!Pbio.Meta.encode} output *)
    }
  | Data of {
      format_id : int;
      message : string;  (** a complete {!Pbio.Wire.encode} message *)
    }
  | Meta_request of { format_id : int }
  | Ack of { seq : int }  (** acknowledges the {!Reliable} frame [seq] *)
  | Reliable of {
      seq : int;
      frame : frame;
          (** the enveloped frame; never itself [Reliable] or [Ack], but
              possibly [Traced] *)
    }
  | Traced of {
      trace_id : int;
      parent_span : int;
      frame : frame;
          (** the enveloped frame; never itself an envelope or [Ack] *)
    }
      (** Carries the sender's {!Obs.Trace.ctx} so the receiver parents
          its delivery spans under the sender's open span.  [Reliable]
          composes {e around} [Traced], never inside it: reliability is a
          per-hop concern, tracing an end-to-end one. *)

exception Frame_error of string

(** Raises {!Frame_error} when asked to nest [Reliable]/[Ack] inside a
    reliable envelope, an envelope or [Ack] inside a traced envelope, or
    encode a negative trace context. *)
val encode : frame -> string

(** Total on untrusted input: malformed frames are [Error (`Frame _)]. *)
val decode : string -> (frame, Pbio.Err.t) result

val decode_exn : string -> frame
[@@deprecated "use decode"]
(** Raises {!Frame_error} on malformed frames. *)

val decode_result : string -> (frame, string) result
[@@deprecated "use decode"]

(** Per-frame byte overhead. *)
val overhead : int
