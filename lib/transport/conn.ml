(* Connection endpoints implementing PBIO's out-of-band meta-data protocol
   over the simulated network.

   A writer pushes a format's meta-data (description plus attached
   retro-transformations) to each peer once, before the first record of
   that format, so every Data frame carries only a small integer id.  A
   receiver that somehow lacks the meta for an id (e.g. it restarted)
   parks the message and sends a Meta_request; the peer replies and parked
   messages flush in order.

   The endpoint survives a lossy network:

   - Parked queues are bounded ([parked_cap] per (peer, format), oldest
     evicted first) so a hostile or partitioned peer cannot grow memory
     without limit.
   - A Meta_request that goes unanswered is retried on a timer with
     exponential backoff; when the retry budget is exhausted the parked
     messages are dropped and counted, never leaked.
   - An endpoint created with [~reliable:true] wraps every outgoing frame
     in a sequence-numbered envelope, acknowledges every envelope it
     receives, retransmits unacknowledged frames with exponential backoff,
     and suppresses duplicate deliveries so the handler never sees a record
     twice.  Exhausting the retransmit budget declares the peer failed and
     invokes [on_peer_failure] (how ECho detects dead sinks).  Any
     endpoint understands the envelope on receipt, so reliable and
     fire-and-forget endpoints interoperate. *)

open Pbio

type message_handler = src:Contact.t -> Meta.format_meta -> Value.t -> unit
type wire_handler = src:Contact.t -> Meta.format_meta -> string -> unit
type slice_handler = src:Contact.t -> Meta.format_meta -> Slice.t -> unit

type peer_key = {
  peer : Contact.t;
  id : int;
}

(* Retry schedule: the first retry waits [initial_s], each later one
   multiplies the wait by [multiplier] up to [max_s]; [max_attempts] counts
   transmissions in total (first send included). *)
type backoff = {
  initial_s : float;
  multiplier : float;
  max_s : float;
  max_attempts : int;
}

let default_retransmit =
  { initial_s = 0.005; multiplier = 2.0; max_s = 0.25; max_attempts = 12 }

let default_meta_retry =
  { initial_s = 0.01; multiplier = 2.0; max_s = 0.5; max_attempts = 8 }

type stats = {
  mutable records_sent : int;
  mutable records_delivered : int;
  mutable retransmits : int;
  mutable acks_received : int;
  mutable duplicates_suppressed : int;
  mutable meta_requests : int;
  mutable meta_retries : int;
  mutable parked_evicted : int;
  mutable parked_dropped : int;
  mutable peer_failures : int;
}

(* An unacknowledged reliable frame awaiting its ack; keyed by (dst, seq).
   [p_bytes] is the frame's full encoding — including any Traced envelope —
   so a retransmission replays the original trace context byte for byte;
   [p_ctx] parents the retransmission's hop span under the original send. *)
type pending = {
  p_bytes : string;
  p_ctx : Obs.Trace.ctx option;
  mutable p_attempts : int;
}

(* Received-sequence tracking per peer: every seq below [floor] has been
   seen; [above] holds the out-of-order ones beyond it.  The set stays
   small — it is drained into [floor] as gaps fill. *)
type seen = {
  mutable floor : int;
  above : (int, unit) Hashtbl.t;
}

type park = {
  q : (Contact.t * string) Queue.t;
  mutable requested : bool; (* a Meta_request retry loop is running *)
  pk_ctx : Obs.Trace.ctx option;
  (* trace context of the first parked message: meta re-request hops and
     their retries stay linked to the trace that triggered them *)
}

(* Handles into an optional Obs registry, mirroring [stats]; the parked
   queue depth is also exported as a gauge so operators can see a morph
   mismatch backing up behind a lost Meta frame. *)
type metrics = {
  m_sent : Obs.Counter.h;
  m_delivered : Obs.Counter.h;
  m_decode_failures : Obs.Counter.h;
  m_retransmits : Obs.Counter.h;
  m_acks : Obs.Counter.h;
  m_dup_suppressed : Obs.Counter.h;
  m_meta_requests : Obs.Counter.h;
  m_meta_retries : Obs.Counter.h;
  m_parked_evicted : Obs.Counter.h;
  m_parked_dropped : Obs.Counter.h;
  m_peer_failures : Obs.Counter.h;
  m_parked_depth : Obs.Gauge.h;
}

let make_metrics reg =
  {
    m_sent = Obs.Counter.make reg "conn.records_sent";
    m_delivered = Obs.Counter.make reg "conn.records_delivered";
    m_decode_failures = Obs.Counter.make reg "conn.decode_failures";
    m_retransmits = Obs.Counter.make reg "conn.retransmits";
    m_acks = Obs.Counter.make reg "conn.acks_received";
    m_dup_suppressed = Obs.Counter.make reg "conn.duplicates_suppressed";
    m_meta_requests = Obs.Counter.make reg "conn.meta_requests";
    m_meta_retries = Obs.Counter.make reg "conn.meta_retries";
    m_parked_evicted = Obs.Counter.make reg "conn.parked_evicted";
    m_parked_dropped = Obs.Counter.make reg "conn.parked_dropped";
    m_peer_failures = Obs.Counter.make reg "conn.peer_failures";
    m_parked_depth = Obs.Gauge.make reg "conn.parked_depth";
  }

type endpoint = {
  net : Netsim.t;
  m : metrics;
  obs : Obs.t;
  traced : bool; (* [Obs.enabled obs], hoisted out of the hot path *)
  contact : Contact.t;
  registry : Registry.t; (* local (writer-side) formats *)
  peer_formats : (peer_key, Meta.format_meta) Hashtbl.t;
  announced : (peer_key, unit) Hashtbl.t;
  parked : (peer_key, park) Hashtbl.t;
  parked_cap : int;
  reliable : bool;
  retransmit : backoff;
  meta_retry : backoff;
  send_seq : (Contact.t, int ref) Hashtbl.t;
  unacked : (Contact.t * int, pending) Hashtbl.t;
  recv_seen : (Contact.t, seen) Hashtbl.t;
  failed_peers : (Contact.t, unit) Hashtbl.t;
  mutable on_peer_failure : (Contact.t -> unit) option;
  mutable on_message : message_handler;
  mutable on_wire : wire_handler option;
  (* raw-bytes delivery: when set, the endpoint hands the undecoded wire
     message (plus its format meta) to the handler and skips the eager
     [Wire.decode] — the receiver can then run a fused decode->morph plan *)
  mutable on_slice : slice_handler option;
  (* zero-copy delivery: like [on_wire] but the handler receives a
     [Slice.t], so a lazy plan can materialise only the fields it keeps.
     The simulated network still traffics in strings, so this endpoint
     performs the one [Slice.of_string] boundary copy; a real transport
     would hand out a view of its receive buffer.  Takes precedence over
     [on_wire]. *)
  endian : Wire.endian;
  pctx : Ctx.t option;
  (* capability context for wire codec plans; [None] = process-global
     caches (legacy default).  Named [pctx] because [ctx] in this file is
     the trace context threaded through [hop_send]. *)
  stats : stats;
}

let default_handler ~src _meta _v =
  ignore src

let contact ep = ep.contact
let stats ep = ep.stats
let set_on_peer_failure ep f = ep.on_peer_failure <- Some f

(* --- sending --------------------------------------------------------------- *)

let raw_send ep ~dst (bytes : string) : unit =
  Netsim.send ep.net ~src:ep.contact ~dst bytes

(* Send and record a "net.hop" trace span covering the frame's simulated
   flight time (sender-side: the Traced envelope carries no timestamps,
   so the hop is timed from the scheduled arrival the simulator reports).
   A frame dropped at send time still records a zero-length hop span
   marked dropped=true, so traces show where a message died. *)
let hop_send ?ctx ?(attrs = []) ep ~dst (bytes : string) : unit =
  if not ep.traced then raw_send ep ~dst bytes
  else begin
    let start_ns = Obs.now ep.obs in
    let sim0 = Netsim.now ep.net in
    let base =
      ("dst", Fmt.str "%a" Contact.pp dst)
      :: ("bytes", string_of_int (String.length bytes))
      :: attrs
    in
    match Netsim.send_arrival ep.net ~src:ep.contact ~dst bytes with
    | Some arrival ->
      Obs.Trace.record ?ctx ~attrs:base ep.obs "net.hop" ~start_ns
        ~end_ns:(start_ns +. ((arrival -. sim0) *. 1e9))
    | None ->
      Obs.Trace.record ?ctx
        ~attrs:(("dropped", "true") :: base)
        ep.obs "net.hop" ~start_ns ~end_ns:start_ns
  end

let peer_failed ep (dst : Contact.t) : unit =
  if not (Hashtbl.mem ep.failed_peers dst) then begin
    Hashtbl.replace ep.failed_peers dst ();
    ep.stats.peer_failures <- ep.stats.peer_failures + 1;
    Obs.Counter.incr ep.m.m_peer_failures;
    (* stop retransmitting everything else bound for the dead peer *)
    let stale =
      Hashtbl.fold
        (fun ((d, _) as k) _ acc -> if Contact.equal d dst then k :: acc else acc)
        ep.unacked []
    in
    List.iter (Hashtbl.remove ep.unacked) stale;
    Logs.warn (fun m ->
        m "%a: peer %a declared failed after %d unacknowledged attempts"
          Contact.pp ep.contact Contact.pp dst ep.retransmit.max_attempts);
    match ep.on_peer_failure with Some f -> f dst | None -> ()
  end

let rec schedule_retransmit ep ~dst ~seq ~delay : unit =
  Netsim.after ep.net delay (fun () ->
      match Hashtbl.find_opt ep.unacked (dst, seq) with
      | None -> () (* acknowledged in the meantime *)
      | Some p ->
        if p.p_attempts >= ep.retransmit.max_attempts then begin
          Hashtbl.remove ep.unacked (dst, seq);
          peer_failed ep dst
        end
        else begin
          p.p_attempts <- p.p_attempts + 1;
          ep.stats.retransmits <- ep.stats.retransmits + 1;
          Obs.Counter.incr ep.m.m_retransmits;
          hop_send ?ctx:p.p_ctx
            ~attrs:[ ("retransmit", string_of_int (p.p_attempts - 1)) ]
            ep ~dst p.p_bytes;
          schedule_retransmit ep ~dst ~seq
            ~delay:(Float.min (delay *. ep.retransmit.multiplier) ep.retransmit.max_s)
        end)

(* Transmit a protocol frame, wrapped in the ambient trace context (when
   a span is open on this endpoint's registry) and under the reliability
   envelope when this endpoint runs reliable.  Reliable composes around
   Traced, so the stored retransmission bytes replay the original trace
   context. *)
let send_frame ep ~dst (f : Framing.frame) : unit =
  let ctx = if ep.traced then Obs.Trace.current ep.obs else None in
  let f =
    match ctx with
    | Some (c : Obs.Trace.ctx) ->
      Framing.Traced { trace_id = c.trace_id; parent_span = c.span_id; frame = f }
    | None -> f
  in
  if not ep.reliable then hop_send ?ctx ep ~dst (Framing.encode f)
  else begin
    (* a fresh send to a failed peer gives it another chance *)
    Hashtbl.remove ep.failed_peers dst;
    let ctr =
      match Hashtbl.find_opt ep.send_seq dst with
      | Some r -> r
      | None ->
        let r = ref 0 in
        Hashtbl.replace ep.send_seq dst r;
        r
    in
    let seq = !ctr in
    incr ctr;
    let bytes = Framing.encode (Framing.Reliable { seq; frame = f }) in
    Hashtbl.replace ep.unacked (dst, seq)
      { p_bytes = bytes; p_ctx = ctx; p_attempts = 1 };
    hop_send ?ctx ep ~dst bytes;
    schedule_retransmit ep ~dst ~seq ~delay:ep.retransmit.initial_s
  end

(* --- duplicate suppression -------------------------------------------------- *)

let already_seen ep (src : Contact.t) (seq : int) : bool =
  match Hashtbl.find_opt ep.recv_seen src with
  | None -> false
  | Some s -> seq < s.floor || Hashtbl.mem s.above seq

let mark_seen ep (src : Contact.t) (seq : int) : unit =
  let s =
    match Hashtbl.find_opt ep.recv_seen src with
    | Some s -> s
    | None ->
      let s = { floor = 0; above = Hashtbl.create 8 } in
      Hashtbl.replace ep.recv_seen src s;
      s
  in
  if seq = s.floor then begin
    s.floor <- s.floor + 1;
    while Hashtbl.mem s.above s.floor do
      Hashtbl.remove s.above s.floor;
      s.floor <- s.floor + 1
    done
  end
  else if seq > s.floor then Hashtbl.replace s.above seq ()

(* --- meta-data recovery ----------------------------------------------------- *)

let parked_messages ep =
  Hashtbl.fold (fun _ p acc -> acc + Queue.length p.q) ep.parked 0

(* The depth gauge is maintained as up/down deltas ([Obs.Gauge.add])
   rather than recomputed with [set]: delta gauges sum across domain
   shards at merge time, so endpoints split over domains report the
   true total parked depth instead of one shard's last write. *)
let parked_delta ep d =
  if d <> 0 then Obs.Gauge.add ep.m.m_parked_depth (float_of_int d)

let send_meta_request ?ctx ep (key : peer_key) : unit =
  ep.stats.meta_requests <- ep.stats.meta_requests + 1;
  Obs.Counter.incr ep.m.m_meta_requests;
  let ctx =
    match ctx with
    | Some _ as c -> c
    | None -> if ep.traced then Obs.Trace.current ep.obs else None
  in
  let f = Framing.Meta_request { format_id = key.id } in
  let f =
    match ctx with
    | Some (c : Obs.Trace.ctx) ->
      Framing.Traced { trace_id = c.trace_id; parent_span = c.span_id; frame = f }
    | None -> f
  in
  (* unacknowledged on purpose: the timer loop below is the retry
     mechanism, and it also covers the reply being lost, which an acked
     request would not *)
  hop_send ?ctx ~attrs:[ ("kind", "meta_request") ] ep ~dst:key.peer
    (Framing.encode f)

let rec schedule_meta_retry ep (key : peer_key) ~attempt ~delay : unit =
  Netsim.after ep.net delay (fun () ->
      match Hashtbl.find_opt ep.parked key with
      | None -> () (* the meta-data arrived and the queue flushed *)
      | Some p ->
        if attempt >= ep.meta_retry.max_attempts then begin
          ep.stats.parked_dropped <- ep.stats.parked_dropped + Queue.length p.q;
          Obs.Counter.add ep.m.m_parked_dropped (Queue.length p.q);
          parked_delta ep (-(Queue.length p.q));
          Hashtbl.remove ep.parked key;
          Logs.warn (fun m ->
              m "%a: giving up on meta-data for format %d from %a after %d \
                 requests; dropping %d parked message(s)"
                Contact.pp ep.contact key.id Contact.pp key.peer attempt
                (Queue.length p.q))
        end
        else begin
          ep.stats.meta_retries <- ep.stats.meta_retries + 1;
          Obs.Counter.incr ep.m.m_meta_retries;
          send_meta_request ?ctx:p.pk_ctx ep key;
          schedule_meta_retry ep key ~attempt:(attempt + 1)
            ~delay:(Float.min (delay *. ep.meta_retry.multiplier) ep.meta_retry.max_s)
        end)

let park_message ep (key : peer_key) ~src (message : string) : unit =
  let p =
    match Hashtbl.find_opt ep.parked key with
    | Some p -> p
    | None ->
      let p =
        {
          q = Queue.create ();
          requested = false;
          pk_ctx = (if ep.traced then Obs.Trace.current ep.obs else None);
        }
      in
      Hashtbl.replace ep.parked key p;
      p
  in
  if not p.requested then begin
    p.requested <- true;
    send_meta_request ?ctx:p.pk_ctx ep key;
    schedule_meta_retry ep key ~attempt:1 ~delay:ep.meta_retry.initial_s
  end;
  if Queue.length p.q >= ep.parked_cap then begin
    ignore (Queue.pop p.q); (* oldest-first eviction *)
    ep.stats.parked_evicted <- ep.stats.parked_evicted + 1;
    Obs.Counter.incr ep.m.m_parked_evicted;
    parked_delta ep (-1)
  end;
  Queue.add (src, message) p.q;
  parked_delta ep 1

(* --- receiving -------------------------------------------------------------- *)

let deliver ep ~src (fm : Meta.format_meta) (message : string) : unit =
  match ep.on_slice, ep.on_wire with
  | Some f, _ ->
    (* zero-copy path: the handler owns decoding; the copy below is the
       string-API boundary shim (see [on_slice]) *)
    ep.stats.records_delivered <- ep.stats.records_delivered + 1;
    Obs.Counter.incr ep.m.m_delivered;
    f ~src fm (Slice.of_string message)
  | None, Some f ->
    (* raw path: decoding (and its failure handling) is the handler's job *)
    ep.stats.records_delivered <- ep.stats.records_delivered + 1;
    Obs.Counter.incr ep.m.m_delivered;
    f ~src fm message
  | None, None ->
    (match Wire.decode ?ctx:ep.pctx fm.Meta.body message with
     | Ok v ->
       ep.stats.records_delivered <- ep.stats.records_delivered + 1;
       Obs.Counter.incr ep.m.m_delivered;
       ep.on_message ~src fm v
     | Error e ->
       (* a corrupted record must not take the endpoint down *)
       Obs.Counter.incr ep.m.m_decode_failures;
       Logs.warn (fun m ->
           m "%a: dropping undecodable message from %a: %a" Contact.pp ep.contact
             Contact.pp src Err.pp e))

let rec handle_inner ep ~src (frame : Framing.frame) : unit =
  match frame with
  | Framing.Meta { format_id; meta } ->
    (match Meta.decode meta with
     | Error e ->
       Logs.warn (fun m ->
           m "%a: bad meta-data from %a: %a" Contact.pp ep.contact Contact.pp src
             Err.pp e)
     | Ok fm ->
       let key = { peer = src; id = format_id } in
       Hashtbl.replace ep.peer_formats key fm;
       (* flush anything parked waiting for this meta *)
       (match Hashtbl.find_opt ep.parked key with
        | None -> ()
        | Some p ->
          Hashtbl.remove ep.parked key;
          parked_delta ep (-(Queue.length p.q));
          Queue.iter (fun (src, message) -> deliver ep ~src fm message) p.q))
  | Framing.Data { format_id; message } ->
    let key = { peer = src; id = format_id } in
    (match Hashtbl.find_opt ep.peer_formats key with
     | Some fm -> deliver ep ~src fm message
     | None -> park_message ep key ~src message)
  | Framing.Meta_request { format_id } ->
    (match Registry.find ep.registry format_id with
     | None ->
       Logs.warn (fun m ->
           m "%a: meta request for unknown format %d from %a"
             Contact.pp ep.contact format_id Contact.pp src)
     | Some f ->
       send_frame ep ~dst:src
         (Framing.Meta { format_id; meta = Meta.encode f.Registry.meta }))
  | Framing.Ack { seq } ->
    ep.stats.acks_received <- ep.stats.acks_received + 1;
    Obs.Counter.incr ep.m.m_acks;
    Hashtbl.remove ep.unacked (src, seq)
  | Framing.Reliable { seq; frame } ->
    (* always acknowledge — the previous ack may itself have been lost;
       the ack hop joins the inner frame's trace when it carries one *)
    let ctx =
      if not ep.traced then None
      else
        match frame with
        | Framing.Traced { trace_id; parent_span; _ } ->
          Some { Obs.Trace.trace_id; span_id = parent_span }
        | _ -> None
    in
    hop_send ?ctx ~attrs:[ ("kind", "ack") ] ep ~dst:src
      (Framing.encode (Framing.Ack { seq }));
    if already_seen ep src seq then begin
      ep.stats.duplicates_suppressed <- ep.stats.duplicates_suppressed + 1;
      Obs.Counter.incr ep.m.m_dup_suppressed
    end
    else begin
      mark_seen ep src seq;
      handle_inner ep ~src frame
    end
  | Framing.Traced { trace_id; parent_span; frame } ->
    (* continue the sender's trace: everything this delivery does —
       decode, morph planning, conversion, application handling, even
       replies sent from inside the handler — parents under the
       sender's span *)
    Obs.Trace.with_span
      ~ctx:{ Obs.Trace.trace_id; span_id = parent_span }
      ep.obs "conn.deliver"
      (fun () -> handle_inner ep ~src frame)
  | Framing.Described { tenant; _ } ->
    (* gateway envelopes are terminated by a Gateway node, not a plain
       endpoint: a Described frame here is a routing mistake, dropped
       rather than mis-delivered without its admission context *)
    Logs.warn (fun m ->
        m "conn: dropping described frame for tenant %d at a plain endpoint \
           (no gateway here)" tenant)

let handle_frame ep ~src (payload : string) : unit =
  match Framing.decode payload with
  | Error e ->
    Logs.warn (fun m ->
        m "%a: dropping malformed frame from %a: %a" Contact.pp ep.contact
          Contact.pp src Err.pp e)
  | Ok frame -> handle_inner ep ~src frame

(* --- construction ----------------------------------------------------------- *)

let create ?(endian = Wire.Little) ?(reliable = false)
    ?(retransmit = default_retransmit) ?(meta_retry = default_meta_retry)
    ?(parked_cap = 64) ?(metrics = Obs.null) ?ctx (net : Netsim.t)
    (contact : Contact.t) : endpoint =
  if parked_cap < 1 then invalid_arg "Conn.create: parked_cap must be positive";
  let ep =
    {
      net;
      m = make_metrics metrics;
      obs = metrics;
      traced = Obs.enabled metrics;
      contact;
      registry = Registry.create ();
      peer_formats = Hashtbl.create 16;
      announced = Hashtbl.create 16;
      parked = Hashtbl.create 4;
      parked_cap;
      reliable;
      retransmit;
      meta_retry;
      send_seq = Hashtbl.create 8;
      unacked = Hashtbl.create 16;
      recv_seen = Hashtbl.create 8;
      failed_peers = Hashtbl.create 4;
      on_peer_failure = None;
      on_message = default_handler;
      on_wire = None;
      on_slice = None;
      endian;
      pctx = ctx;
      stats =
        {
          records_sent = 0;
          records_delivered = 0;
          retransmits = 0;
          acks_received = 0;
          duplicates_suppressed = 0;
          meta_requests = 0;
          meta_retries = 0;
          parked_evicted = 0;
          parked_dropped = 0;
          peer_failures = 0;
        };
    }
  in
  Netsim.add_node net contact (fun ~src payload -> handle_frame ep ~src payload);
  ep

let set_handler ep f =
  ep.on_message <- f;
  ep.on_wire <- None;
  ep.on_slice <- None

let set_wire_handler ep f =
  ep.on_wire <- Some f;
  ep.on_slice <- None

let set_slice_handler ep f = ep.on_slice <- Some f

(* Register a format for sending; idempotent. *)
let register ep (meta : Meta.format_meta) : Registry.fmt =
  Registry.register ep.registry meta

let send_plain ep ~(dst : Contact.t) (meta : Meta.format_meta) (v : Value.t) :
  unit =
  let f = register ep meta in
  let key = { peer = dst; id = f.Registry.id } in
  ep.stats.records_sent <- ep.stats.records_sent + 1;
  Obs.Counter.incr ep.m.m_sent;
  if not (Hashtbl.mem ep.announced key) then begin
    Hashtbl.replace ep.announced key ();
    send_frame ep ~dst
      (Framing.Meta { format_id = f.Registry.id; meta = Meta.encode meta })
  end;
  let message =
    Obs.Trace.with_span ep.obs "wire.encode" (fun () ->
        Wire.encode ?ctx:ep.pctx ~endian:ep.endian ~format_id:f.Registry.id
          meta.Meta.body v)
  in
  send_frame ep ~dst (Framing.Data { format_id = f.Registry.id; message })

let send ep ~(dst : Contact.t) (meta : Meta.format_meta) (v : Value.t) : unit =
  if not ep.traced then send_plain ep ~dst meta v
  else
    (* when called inside an open span (e.g. a handler continuing a
       received context) this nests there and the whole send inherits
       the caller's trace id; at top level it roots a fresh trace *)
    Obs.Trace.with_span
      ~attrs:
        [
          ("dst", Fmt.str "%a" Contact.pp dst);
          ("format", meta.Meta.body.Ptype.rname);
        ]
      ep.obs "conn.send"
      (fun () -> send_plain ep ~dst meta v)

(* Simulate a receiver losing its soft state (format caches): subsequent
   unknown Data frames trigger the Meta_request recovery path. *)
let forget_peer_formats ep = Hashtbl.reset ep.peer_formats

let known_peer_formats ep = Hashtbl.length ep.peer_formats

let unacked_frames ep = Hashtbl.length ep.unacked
