(* A deterministic discrete-event network simulator (DESIGN.md, substitution
   S3).  Message delivery costs a per-link latency plus a serialisation
   delay proportional to message size; links can be taken down for failure
   injection.  Time is simulated seconds.

   Beyond the binary link-up/link-down model, every link can run under a
   seeded probabilistic fault profile — frame loss, duplication, reordering
   and latency jitter — and node groups can be partitioned for a timed
   window of simulated time.  Each drop is accounted under its reason, and
   an optional trace hook observes every send, delivery, duplication and
   drop.  The same event queue also drives virtual-clock timers, which is
   what the connection layer's retransmission and backoff logic runs on. *)

type link_state =
  | Up
  | Down

type config = {
  latency_s : float;           (* one-way propagation delay *)
  bandwidth_bytes_per_s : float; (* serialisation rate; infinity = free *)
}

let default_config = { latency_s = 100e-6; bandwidth_bytes_per_s = 125_000_000. }
(* 100us / ~1 Gbit: the sort of LAN the paper's testbed used *)

(* Per-link fault profile.  Probabilities are per frame; [jitter_s] adds a
   uniform extra delay in [0, jitter_s].  A reordered frame escapes the
   link's FIFO clamp and takes a random multiple of its nominal delay, so
   later frames can overtake it. *)
type faults = {
  loss : float;
  duplication : float;
  reorder : float;
  jitter_s : float;
}

let no_faults = { loss = 0.0; duplication = 0.0; reorder = 0.0; jitter_s = 0.0 }

type handler = src:Contact.t -> string -> unit

type node = { mutable handler : handler }

type drop_reason =
  | Unknown_destination
  | Link_down       (* downed link or active partition *)
  | Injected_loss
  | Queue_overflow

let pp_drop_reason ppf = function
  | Unknown_destination -> Fmt.string ppf "unknown-destination"
  | Link_down -> Fmt.string ppf "link-down"
  | Injected_loss -> Fmt.string ppf "injected-loss"
  | Queue_overflow -> Fmt.string ppf "queue-overflow"

type stats = {
  mutable messages : int;
  mutable bytes : int;
  mutable duplicated : int;
  mutable drops_unknown_dst : int;
  mutable drops_link_down : int;
  mutable drops_loss : int;
  mutable drops_overflow : int;
}

let dropped (s : stats) : int =
  s.drops_unknown_dst + s.drops_link_down + s.drops_loss + s.drops_overflow

type trace_event =
  | Trace_sent of { src : Contact.t; dst : Contact.t; bytes : int; arrival : float }
  | Trace_delivered of { src : Contact.t; dst : Contact.t; bytes : int }
  | Trace_dropped of { src : Contact.t; dst : Contact.t; reason : drop_reason }
  | Trace_duplicated of { src : Contact.t; dst : Contact.t }
  | Trace_timer_fired of { at : float }

type partition = {
  group_a : Contact.t list;
  group_b : Contact.t list;
  start : float;
  stop : float;
}

type queued =
  | Frame of {
      dst : Contact.t;
      src : Contact.t;
      payload : string;
    }
  | Timer of (unit -> unit)

(* Handles into an optional Obs registry, mirroring [stats] so a shared
   registry aggregates across simulators and shows up in `morphctl stats`. *)
type metrics = {
  m_delivered : Obs.Counter.h;
  m_bytes : Obs.Counter.h;
  m_duplicated : Obs.Counter.h;
  m_drops_unknown_dst : Obs.Counter.h;
  m_drops_link_down : Obs.Counter.h;
  m_drops_loss : Obs.Counter.h;
  m_drops_overflow : Obs.Counter.h;
  m_timers : Obs.Counter.h;
}

let make_metrics reg =
  (* per-reason drops are one labeled family so an exposition shows the
     breakdown as netsim_drops{reason="..."}; the four series handles
     are resolved once here, keeping the drop paths handle-speed *)
  let drops = Obs.Labeled.counter reg ~keys:[ "reason" ] "netsim.drops" in
  let drop_series reason = Obs.Labeled.counter_series drops [ reason ] in
  {
    m_delivered = Obs.Counter.make reg "netsim.delivered";
    m_bytes = Obs.Counter.make reg ~unit_:"bytes" "netsim.bytes";
    m_duplicated = Obs.Counter.make reg "netsim.duplicated";
    m_drops_unknown_dst = drop_series "unknown_dst";
    m_drops_link_down = drop_series "link_down";
    m_drops_loss = drop_series "loss";
    m_drops_overflow = drop_series "overflow";
    m_timers = Obs.Counter.make reg "netsim.timers_fired";
  }

type t = {
  config : config;
  m : metrics;
  mutable corrupt : (string -> string) option;
  (* fault injection: applied to every delivered payload when set *)
  mutable now : float;
  queue : queued Pqueue.t;
  nodes : (Contact.t, node) Hashtbl.t;
  down_links : (Contact.t * Contact.t, unit) Hashtbl.t;
  last_arrival : (Contact.t * Contact.t, float) Hashtbl.t;
  (* links are FIFO, like the stream connections PBIO runs over: a message
     never overtakes an earlier one on the same (src, dst) link — unless the
     fault model explicitly reorders it *)
  mutable default_faults : faults;
  link_faults : (Contact.t * Contact.t, faults) Hashtbl.t;
  mutable partitions : partition list;
  mutable link_capacity : int option;
  (* max frames in flight per (src, dst) link; None = unbounded *)
  in_flight : (Contact.t * Contact.t, int) Hashtbl.t;
  rng : Random.State.t;
  mutable trace : (trace_event -> unit) option;
  stats : stats;
}

let create ?(config = default_config) ?(seed = 0) ?(metrics = Obs.null) () =
  {
    config;
    m = make_metrics metrics;
    corrupt = None;
    now = 0.0;
    queue = Pqueue.create ();
    nodes = Hashtbl.create 16;
    down_links = Hashtbl.create 4;
    last_arrival = Hashtbl.create 16;
    default_faults = no_faults;
    link_faults = Hashtbl.create 4;
    partitions = [];
    link_capacity = None;
    in_flight = Hashtbl.create 16;
    rng = Random.State.make [| 0x6e65747369; seed |];
    trace = None;
    stats =
      {
        messages = 0;
        bytes = 0;
        duplicated = 0;
        drops_unknown_dst = 0;
        drops_link_down = 0;
        drops_loss = 0;
        drops_overflow = 0;
      };
  }

let now t = t.now
let stats t = t.stats

(* Install (or clear) a payload-corruption fault: every subsequent delivery
   passes through [f] first. *)
let set_corruption t f = t.corrupt <- f

let set_faults t faults = t.default_faults <- faults

let set_link_faults t ~src ~dst = function
  | Some faults -> Hashtbl.replace t.link_faults (src, dst) faults
  | None -> Hashtbl.remove t.link_faults (src, dst)

let faults_for t ~src ~dst =
  Option.value ~default:t.default_faults (Hashtbl.find_opt t.link_faults (src, dst))

let set_link_capacity t cap = t.link_capacity <- cap

let set_trace t f = t.trace <- f

let trace t ev = match t.trace with Some f -> f ev | None -> ()

exception Duplicate_node of Contact.t
exception Unknown_node of Contact.t

let add_node t (contact : Contact.t) (handler : handler) : unit =
  if Hashtbl.mem t.nodes contact then raise (Duplicate_node contact);
  Hashtbl.replace t.nodes contact { handler }

let set_handler t contact handler =
  match Hashtbl.find_opt t.nodes contact with
  | Some n -> n.handler <- handler
  | None -> raise (Unknown_node contact)

let remove_node t contact = Hashtbl.remove t.nodes contact

let set_link t ~src ~dst (state : link_state) =
  match state with
  | Down -> Hashtbl.replace t.down_links (src, dst) ()
  | Up -> Hashtbl.remove t.down_links (src, dst)

let link_up t ~src ~dst = not (Hashtbl.mem t.down_links (src, dst))

(* Sever every link between the two groups during [start, stop) of simulated
   time; whether a frame crosses is decided at send time. *)
let add_partition t ~group_a ~group_b ~start ~stop =
  t.partitions <- { group_a; group_b; start; stop } :: t.partitions

let partitioned t ~src ~dst =
  let mem c l = List.exists (Contact.equal c) l in
  List.exists
    (fun p ->
       t.now >= p.start && t.now < p.stop
       && ((mem src p.group_a && mem dst p.group_b)
           || (mem src p.group_b && mem dst p.group_a)))
    t.partitions

(* --- the event queue ------------------------------------------------------- *)

let in_flight_count t link =
  Option.value ~default:0 (Hashtbl.find_opt t.in_flight link)

let enqueue_frame t ~src ~dst ~(faults : faults) (payload : string) : float =
  let jitter =
    if faults.jitter_s > 0.0 then Random.State.float t.rng faults.jitter_s else 0.0
  in
  let delay =
    t.config.latency_s
    +. (float_of_int (String.length payload) /. t.config.bandwidth_bytes_per_s)
    +. jitter
  in
  let reordered = faults.reorder > 0.0 && Random.State.float t.rng 1.0 < faults.reorder in
  let arrival =
    if reordered then
      (* escape the FIFO clamp and linger, so later frames overtake *)
      t.now +. (delay *. (1.0 +. Random.State.float t.rng 3.0))
    else begin
      let earliest =
        Option.value ~default:0.0 (Hashtbl.find_opt t.last_arrival (src, dst))
      in
      let a = Float.max (t.now +. delay) earliest in
      Hashtbl.replace t.last_arrival (src, dst) a;
      a
    end
  in
  Hashtbl.replace t.in_flight (src, dst) (in_flight_count t (src, dst) + 1);
  trace t (Trace_sent { src; dst; bytes = String.length payload; arrival });
  Pqueue.push t.queue arrival (Frame { dst; src; payload });
  arrival

(* Queue a message for delivery.  Unknown destinations, downed or
   partitioned links, injected losses and full link queues drop silently
   (like UDP), each counted under its reason.  Returns the scheduled
   arrival time of the (first copy of the) frame, or [None] when it was
   dropped — which is how the connection layer times its hop spans. *)
let send_arrival t ~(src : Contact.t) ~(dst : Contact.t) (payload : string) :
  float option =
  let drop reason =
    (match reason with
     | Unknown_destination ->
       t.stats.drops_unknown_dst <- t.stats.drops_unknown_dst + 1;
       Obs.Counter.incr t.m.m_drops_unknown_dst
     | Link_down ->
       t.stats.drops_link_down <- t.stats.drops_link_down + 1;
       Obs.Counter.incr t.m.m_drops_link_down
     | Injected_loss ->
       t.stats.drops_loss <- t.stats.drops_loss + 1;
       Obs.Counter.incr t.m.m_drops_loss
     | Queue_overflow ->
       t.stats.drops_overflow <- t.stats.drops_overflow + 1;
       Obs.Counter.incr t.m.m_drops_overflow);
    trace t (Trace_dropped { src; dst; reason });
    None
  in
  if not (Hashtbl.mem t.nodes dst) then drop Unknown_destination
  else if (not (link_up t ~src ~dst)) || partitioned t ~src ~dst then drop Link_down
  else begin
    let faults = faults_for t ~src ~dst in
    if faults.loss > 0.0 && Random.State.float t.rng 1.0 < faults.loss then
      drop Injected_loss
    else
      match t.link_capacity with
      | Some cap when in_flight_count t (src, dst) >= cap -> drop Queue_overflow
      | _ ->
        let arrival = enqueue_frame t ~src ~dst ~faults payload in
        if faults.duplication > 0.0
           && Random.State.float t.rng 1.0 < faults.duplication
           && (match t.link_capacity with
               | Some cap -> in_flight_count t (src, dst) < cap
               | None -> true)
        then begin
          t.stats.duplicated <- t.stats.duplicated + 1;
          Obs.Counter.incr t.m.m_duplicated;
          trace t (Trace_duplicated { src; dst });
          ignore (enqueue_frame t ~src ~dst ~faults payload : float)
        end;
        Some arrival
  end

let send t ~(src : Contact.t) ~(dst : Contact.t) (payload : string) : unit =
  ignore (send_arrival t ~src ~dst payload : float option)

(* Schedule [f] to run [delay] simulated seconds from now.  Timers share the
   event queue with frames, so [step]/[run]/[advance] drive them. *)
let after t (delay : float) (f : unit -> unit) : unit =
  Pqueue.push t.queue (t.now +. Float.max 0.0 delay) (Timer f)

(* Deliver the next pending message or fire the next timer; false when the
   queue is empty. *)
let step t : bool =
  match Pqueue.pop t.queue with
  | None -> false
  | Some (at, item) ->
    t.now <- Float.max t.now at;
    (match item with
     | Timer f ->
       Obs.Counter.incr t.m.m_timers;
       trace t (Trace_timer_fired { at = t.now });
       f ()
     | Frame ev ->
       let link = (ev.src, ev.dst) in
       Hashtbl.replace t.in_flight link (max 0 (in_flight_count t link - 1));
       (match Hashtbl.find_opt t.nodes ev.dst with
        | None ->
          t.stats.drops_unknown_dst <- t.stats.drops_unknown_dst + 1;
          Obs.Counter.incr t.m.m_drops_unknown_dst;
          trace t
            (Trace_dropped { src = ev.src; dst = ev.dst; reason = Unknown_destination })
        | Some node ->
          t.stats.messages <- t.stats.messages + 1;
          t.stats.bytes <- t.stats.bytes + String.length ev.payload;
          Obs.Counter.incr t.m.m_delivered;
          Obs.Counter.add t.m.m_bytes (String.length ev.payload);
          trace t
            (Trace_delivered
               { src = ev.src; dst = ev.dst; bytes = String.length ev.payload });
          let payload =
            match t.corrupt with Some f -> f ev.payload | None -> ev.payload
          in
          node.handler ~src:ev.src payload));
    true

type run_result = {
  steps : int;
  quiesced : bool; (* false when the run stopped at [max_steps] *)
}

(* Run until quiescent (handlers may send more messages). *)
let run ?(max_steps = max_int) t : run_result =
  let rec go n =
    if n >= max_steps then { steps = n; quiesced = Pqueue.is_empty t.queue }
    else if step t then go (n + 1)
    else { steps = n; quiesced = true }
  in
  go 0

(* Process everything due within the next [dt] simulated seconds, then move
   the clock to exactly [now + dt].  Returns the number of events handled. *)
let advance t (dt : float) : int =
  let target = t.now +. Float.max 0.0 dt in
  let rec go n =
    match Pqueue.peek t.queue with
    | Some (at, _) when at <= target -> if step t then go (n + 1) else n
    | _ -> n
  in
  let n = go 0 in
  t.now <- Float.max t.now target;
  n

let pending t = Pqueue.length t.queue
