(** A deterministic discrete-event network simulator (DESIGN.md,
    substitution S3).

    Message delivery costs a per-link latency plus a serialisation delay
    proportional to message size; links are FIFO (like the stream
    connections PBIO runs over) and can be taken down for failure
    injection.  Time is simulated seconds.

    Every link can additionally run under a seeded probabilistic fault
    profile — frame loss, duplication, reordering and latency jitter — and
    node groups can be partitioned for a timed window of simulated time.
    Drops are accounted per reason, an optional trace hook observes the
    traffic, and the same event queue drives virtual-clock timers (what the
    connection layer's retransmission and backoff logic runs on).  See
    docs/FAULTS.md. *)

type link_state =
  | Up
  | Down

type config = {
  latency_s : float;  (** one-way propagation delay *)
  bandwidth_bytes_per_s : float;
}

(** 100 us latency, ~1 Gbit/s — the sort of LAN the paper's testbed used. *)
val default_config : config

(** Per-link fault profile.  Probabilities are per frame; [jitter_s] adds a
    uniform extra delay in [0, jitter_s]; a reordered frame escapes the
    link's FIFO ordering and lingers so later frames overtake it. *)
type faults = {
  loss : float;
  duplication : float;
  reorder : float;
  jitter_s : float;
}

val no_faults : faults

type handler = src:Contact.t -> string -> unit

type drop_reason =
  | Unknown_destination
  | Link_down  (** downed link or active partition *)
  | Injected_loss
  | Queue_overflow

val pp_drop_reason : Format.formatter -> drop_reason -> unit

type stats = {
  mutable messages : int;  (** delivered *)
  mutable bytes : int;
  mutable duplicated : int;  (** extra copies injected by the fault model *)
  mutable drops_unknown_dst : int;
  mutable drops_link_down : int;
  mutable drops_loss : int;
  mutable drops_overflow : int;
}

(** Total drops across all reasons. *)
val dropped : stats -> int

type trace_event =
  | Trace_sent of {
      src : Contact.t;
      dst : Contact.t;
      bytes : int;
      arrival : float;
    }
  | Trace_delivered of {
      src : Contact.t;
      dst : Contact.t;
      bytes : int;
    }
  | Trace_dropped of {
      src : Contact.t;
      dst : Contact.t;
      reason : drop_reason;
    }
  | Trace_duplicated of {
      src : Contact.t;
      dst : Contact.t;
    }
  | Trace_timer_fired of { at : float }

type t

exception Duplicate_node of Contact.t
exception Unknown_node of Contact.t

(** [seed] drives the fault model's RNG; runs with equal seeds and equal
    fault profiles replay identically.  [metrics] mirrors {!stats} into an
    Obs registry ([netsim.delivered], [netsim.bytes], [netsim.duplicated],
    the labeled family [netsim.drops] keyed by [reason] —
    [unknown_dst] / [link_down] / [loss] / [overflow] —
    and [netsim.timers_fired]); defaults to [Obs.null]. *)
val create : ?config:config -> ?seed:int -> ?metrics:Obs.t -> unit -> t

val now : t -> float
val stats : t -> stats
val add_node : t -> Contact.t -> handler -> unit
val set_handler : t -> Contact.t -> handler -> unit
val remove_node : t -> Contact.t -> unit
val set_link : t -> src:Contact.t -> dst:Contact.t -> link_state -> unit

(** Fault injection: when set, every delivered payload passes through the
    function first (bit flips, truncation, ...).  [None] clears it. *)
val set_corruption : t -> (string -> string) option -> unit

(** Default fault profile for every link without an override. *)
val set_faults : t -> faults -> unit

(** Per-link override of the default profile; [None] clears it. *)
val set_link_faults : t -> src:Contact.t -> dst:Contact.t -> faults option -> unit

(** Cap the number of frames in flight per (src, dst) link; sends beyond it
    drop as {!Queue_overflow}.  [None] (the default) is unbounded. *)
val set_link_capacity : t -> int option -> unit

(** Observe every send, delivery, duplication, drop and timer firing. *)
val set_trace : t -> (trace_event -> unit) option -> unit

val link_up : t -> src:Contact.t -> dst:Contact.t -> bool

(** Sever every link between the two groups during [start, stop) of
    simulated time (both directions).  Whether a frame crosses is decided
    at send time; partition drops count as {!Link_down}. *)
val add_partition :
  t ->
  group_a:Contact.t list ->
  group_b:Contact.t list ->
  start:float ->
  stop:float ->
  unit

(** Queue a message; unknown destinations, downed or partitioned links,
    injected losses and full link queues drop silently, each counted under
    its {!drop_reason}. *)
val send : t -> src:Contact.t -> dst:Contact.t -> string -> unit

(** Like {!send}, but reports the scheduled arrival time of the (first
    copy of the) frame in simulated seconds, or [None] when it was
    dropped at send time.  The connection layer uses this to time
    network-hop trace spans without peeking into the event queue. *)
val send_arrival :
  t -> src:Contact.t -> dst:Contact.t -> string -> float option

(** Schedule a callback [delay] simulated seconds from now.  Timers share
    the event queue with frames, so {!step}, {!run} and {!advance} drive
    them. *)
val after : t -> float -> (unit -> unit) -> unit

(** Deliver the next pending message or fire the next timer; [false] when
    the queue is empty. *)
val step : t -> bool

type run_result = {
  steps : int;
  quiesced : bool;  (** [false] when the run stopped at [max_steps] *)
}

(** Run until quiescent (handlers may send more messages); reports the
    number of events handled and whether the network actually drained or
    the run hit [max_steps]. *)
val run : ?max_steps:int -> t -> run_result

(** Process everything due within the next [dt] simulated seconds, then
    move the clock to exactly [now + dt]; returns the number of events
    handled. *)
val advance : t -> float -> int

val pending : t -> int
