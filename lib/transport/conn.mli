(** Connection endpoints implementing PBIO's out-of-band meta-data protocol
    over the simulated network.

    A writer pushes a format's meta-data (description plus attached
    retro-transformations) to each peer once, before the first record of
    that format, so every Data frame carries only a small integer id.  A
    receiver that lacks the meta for an id (e.g. it restarted) parks the
    message and sends a [Meta_request]; the peer replies and parked
    messages flush in order.

    The endpoint survives a lossy network: parked queues are bounded,
    unanswered [Meta_request]s are retried with exponential backoff (and
    eventually given up on, dropping the parked messages rather than
    leaking them), and an endpoint created with [~reliable:true] runs a
    sequence-number + ack + retransmit protocol with duplicate
    suppression, declaring a peer failed when its retransmit budget is
    exhausted.  See docs/FAULTS.md. *)

open Pbio

type message_handler = src:Contact.t -> Meta.format_meta -> Value.t -> unit

(** Raw delivery: the complete, undecoded wire message plus its format
    meta-data.  Lets a receiver run a fused decode->morph plan instead of
    decoding into the sender's layout first. *)
type wire_handler = src:Contact.t -> Meta.format_meta -> string -> unit

(** Zero-copy delivery: like {!wire_handler} but the message arrives as
    a {!Pbio.Slice.t}, so the receiver can run a lazy plan that
    materialises only the fields it keeps
    (typically [Morph.Receiver.deliver_wire_lazy]). *)
type slice_handler = src:Contact.t -> Meta.format_meta -> Slice.t -> unit

type peer_key = {
  peer : Contact.t;
  id : int;
}

(** Retry schedule: the first retry waits [initial_s], each later one
    multiplies the wait by [multiplier] up to [max_s]; [max_attempts]
    counts transmissions in total (first send included). *)
type backoff = {
  initial_s : float;
  multiplier : float;
  max_s : float;
  max_attempts : int;
}

(** 5 ms, doubling, capped at 250 ms, 12 attempts. *)
val default_retransmit : backoff

(** 10 ms, doubling, capped at 500 ms, 8 requests. *)
val default_meta_retry : backoff

type stats = {
  mutable records_sent : int;
  mutable records_delivered : int;  (** handed to the message handler *)
  mutable retransmits : int;
  mutable acks_received : int;
  mutable duplicates_suppressed : int;
  mutable meta_requests : int;  (** sent, retries included *)
  mutable meta_retries : int;
  mutable parked_evicted : int;  (** oldest-first overflow evictions *)
  mutable parked_dropped : int;  (** dropped when meta retries ran out *)
  mutable peer_failures : int;
}

type endpoint

(** Create an endpoint and register it on the network.  [endian] is the
    sender's native byte order (receivers handle either).  [reliable]
    turns on the sequence-number + ack + retransmit envelope for outgoing
    frames — any endpoint understands the envelope on receipt, so
    reliable and fire-and-forget endpoints interoperate.  [retransmit]
    and [meta_retry] tune the backoff schedules; [parked_cap] bounds each
    (peer, format) parked queue.  [metrics] mirrors {!stats} into an Obs
    registry ([conn.*] counters plus the [conn.parked_depth] gauge);
    defaults to [Obs.null].  [ctx] supplies the codec plan caches used by
    this endpoint's [Wire.encode]/[Wire.decode] calls; omitted, the
    process-global caches are used (docs/CONCURRENCY.md). *)
val create :
  ?endian:Wire.endian ->
  ?reliable:bool ->
  ?retransmit:backoff ->
  ?meta_retry:backoff ->
  ?parked_cap:int ->
  ?metrics:Obs.t ->
  ?ctx:Ctx.t ->
  Netsim.t ->
  Contact.t ->
  endpoint

val contact : endpoint -> Contact.t

(** Install the decoded-value handler (and clear any wire handler). *)
val set_handler : endpoint -> message_handler -> unit

(** Install a raw-bytes handler; it supersedes the decoded-value handler
    until {!set_handler} is called again.  The handler owns decoding and
    decode-failure handling (typically {!Morph.Receiver.deliver_wire}). *)
val set_wire_handler : endpoint -> wire_handler -> unit

(** Install a zero-copy handler; it supersedes both other handlers until
    {!set_handler} or {!set_wire_handler} is called again.  The
    simulated network traffics in strings, so this endpoint performs the
    one boundary copy into a fresh slice buffer per delivery — a real
    transport would hand out a view of its receive buffer instead. *)
val set_slice_handler : endpoint -> slice_handler -> unit

(** Called when a reliable peer exhausts its retransmit budget (missed
    acks): the peer is presumed dead.  A later fresh send to that peer
    gives it another chance. *)
val set_on_peer_failure : endpoint -> (Contact.t -> unit) -> unit

(** Register a format for sending; idempotent. *)
val register : endpoint -> Meta.format_meta -> Registry.fmt

(** Send one record, pushing the format meta-data first if this peer has
    not seen it. *)
val send : endpoint -> dst:Contact.t -> Meta.format_meta -> Value.t -> unit

(** Simulate losing soft state (format caches): subsequent unknown Data
    frames exercise the recovery path. *)
val forget_peer_formats : endpoint -> unit

val known_peer_formats : endpoint -> int

(** Messages currently parked awaiting meta-data, across all peers. *)
val parked_messages : endpoint -> int

(** Reliable frames sent but not yet acknowledged. *)
val unacked_frames : endpoint -> int

val stats : endpoint -> stats
