(** Zero-dependency metrics and tracing for the morphing stack.

    A {!t} is a registry of named counters, gauges and fixed-bucket
    histograms.  Instrumented code holds pre-created {e handles} rather
    than looking metrics up by name on the hot path; every handle
    operation is a single mutable-field update guarded by one boolean,
    so a disabled registry ({!null}) costs one branch per event.

    Latencies are measured with {!with_span}, which times a thunk with
    the registry clock and records the duration (in nanoseconds) into a
    histogram named after the current span {e path}: nested spans
    concatenate their names with ["/"], so a span ["plan"] opened inside
    a span ["deliver"] records into the metric ["span:deliver/plan"],
    giving a flat registry the shape of a trace tree.

    Snapshots leave the registry through a {!sink}: a pretty text table,
    line-oriented JSON (one metric per line, the same schema the bench
    trajectory files use), or nothing. *)

type t
(** A metric registry.  Registries are independent; components accept
    one at construction time and default to {!null}. *)

val create : ?label:string -> unit -> t
(** A fresh, enabled registry.  [label] (default ["main"]) names the
    node this registry instruments; it becomes the [node] field of every
    trace span recorded here and the process name in Perfetto. *)

val null : t
(** The shared disabled registry.  Handles minted from it are inert:
    recording into them is a no-op and they register nothing. *)

val enabled : t -> bool

val label : t -> string
(** The node label given at {!create} time (["null"] for {!null}). *)

val reset : t -> unit
(** Zero every metric in [t] without forgetting registrations, and
    discard all recorded trace spans. *)

val set_registry_clock : t -> (unit -> float) -> unit
(** Replace [t]'s clock.  The clock returns nanoseconds as a float; it
    only needs to be monotonic between the start and end of a span.  The
    default derives from [Unix.gettimeofday].  Each registry has its own
    clock so one simulated node (or one test) cannot leak virtual time
    into another.  No-op on {!null}. *)

val now : t -> float
(** Read [t]'s clock (nanoseconds). *)

val merge_into : into:t -> t -> unit
(** [merge_into ~into src] folds [src]'s metrics into [into]: counters
    add, delta gauges ({!Gauge.add}) sum, set gauges take [src]'s value
    when it was ever set, histograms add bucket-wise (count, sum, min,
    max included).  Entries missing from [into] are registered on first
    merge, preserving [src]'s registration order, so merging per-domain
    registries into a fresh one yields their union.  Labeled series
    ({!Labeled}) merge like any other entry — shard-disjoint label sets
    union, matching series (including the reserved ["other"] overflow
    series) aggregate — and family registrations are carried over;
    cardinality caps apply at record time per shard, never at merge.
    Call it at {e scrape} time, from the domain that owns [into], after
    the domains owning the sources have been joined (see
    docs/CONCURRENCY.md).  Raises [Invalid_argument] on a metric- or
    family-kind clash or histogram-bucket mismatch; no-op when [into] is
    {!null}. *)

val merged : ?label:string -> t list -> t
(** [merged ts] is a fresh registry with every [t] in [ts] merged in,
    left to right — the scrape-time aggregate of per-domain shards. *)

module Counter : sig
  type h
  (** Handle to a monotonically increasing integer. *)

  val make : t -> ?unit_:string -> string -> h
  (** [make t name] registers (or re-attaches to) the counter [name].
      Raises [Invalid_argument] if [name] is already registered with a
      different metric kind. *)

  val incr : h -> unit
  val add : h -> int -> unit

  val value : t -> string -> int
  (** Current value, or [0] when [name] was never registered. *)
end

module Gauge : sig
  type h
  (** Handle to a float: last-write-wins via {!set}, or an up/down
      accumulator via {!add}. *)

  val make : t -> ?unit_:string -> string -> h
  val set : h -> float -> unit

  val add : h -> float -> unit
  (** [add h d] moves the gauge by [d] (negative to decrease).  A gauge
      driven by [add] merges by {e summing} across shards in
      {!merge_into}, so depth-style gauges (queue occupancy, parked
      messages) maintained as deltas on per-domain registries report the
      true total at scrape time — a read-modify-write around {!set}
      would keep only one shard's last write.  A later {!set} switches
      the gauge back to last-write-wins merging. *)

  val value : t -> string -> float option
  (** [None] until the gauge is first set. *)
end

module Histogram : sig
  type h
  (** Handle to a fixed-bucket histogram. *)

  type snapshot = {
    count : int;
    sum : float;
    min : float;  (** 0. when [count = 0] *)
    max : float;  (** 0. when [count = 0] *)
    buckets : (float * int) list;
        (** cumulative-free per-bucket counts, keyed by inclusive upper
            bound; the final bucket's bound is [infinity]. *)
  }

  val make : t -> ?unit_:string -> ?buckets:float list -> string -> h
  (** [make t name] registers histogram [name].  [buckets] lists the
      inclusive upper bounds in ascending order (an implicit [+inf]
      bucket is always appended); defaults to
      {!default_latency_buckets}. *)

  val observe : h -> float -> unit

  val snapshot : t -> string -> snapshot option
  val count : t -> string -> int
  val sum : t -> string -> float

  val quantile : snapshot -> float -> float
  (** [quantile s q] estimates the [q]-quantile (0 to 1) of the recorded
      observations from the bucket counts: the upper bound of the bucket
      holding the rank-[ceil (q * count)] sample, clamped to
      [\[s.min, s.max\]].  Deterministic for a given snapshot, so golden
      tests can assert on it.  Every input is defined: 0. when the
      histogram is empty, the one observed value (for any [q], including
      p999) on a single-sample snapshot, and [q] values outside [\[0, 1\]]
      — or NaN — clamp to the nearest end of the range. *)
end

(** {1 Labeled families}

    A {e family} is one registration covering many {e series}, each
    keyed by a tuple of label values: [gateway.tenant.shed{tenant="3",
    reason="quota"}].  Series are ordinary registry entries named with
    the composed prometheus-syntax string, so they merge, reset and
    render through every existing path unchanged.

    Cardinality is bounded per family: once [cardinality] distinct
    tuples exist in a registry, further tuples spill into a reserved
    series whose every label value is ["other"], and each spilled lookup
    increments the plain counter [obs.label_overflow].  ["other"] is
    therefore a reserved label value: asking for it explicitly addresses
    the overflow series directly (never counts against the cap or as a
    spill).  The cap applies at record time per registry — merging
    shard registries with disjoint label sets may legitimately union to
    more series than one shard's cap.

    Hot paths should resolve a series handle once and memoize it; the
    [*_series] functions cost one hashtable probe plus a string build.
    Families minted from {!null} are inert, as are their handles. *)

module Labeled : sig
  type counter
  type gauge
  type histogram

  val default_cardinality : int
  (** 64 distinct series per family. *)

  val overflow_value : string
  (** The reserved label value ["other"]. *)

  val counter :
    t -> ?unit_:string -> ?cardinality:int -> keys:string list -> string ->
    counter
  (** [counter t ~keys name] registers (or re-attaches to) the counter
      family [name] with label keys [keys] (non-empty, [A-Za-z0-9_]).
      Raises [Invalid_argument] on a kind or key-tuple clash with an
      existing family of the same name. *)

  val gauge :
    t -> ?unit_:string -> ?cardinality:int -> keys:string list -> string ->
    gauge

  val histogram :
    t ->
    ?unit_:string ->
    ?buckets:float list ->
    ?cardinality:int ->
    keys:string list ->
    string ->
    histogram

  val counter_series : counter -> string list -> Counter.h
  (** [counter_series fam values] is the handle for the series keyed by
      [values] (arity must match the family's [keys]; raises otherwise).
      Memoize it on hot paths. *)

  val gauge_series : gauge -> string list -> Gauge.h
  val histogram_series : histogram -> string list -> Histogram.h

  val incr : counter -> string list -> unit
  (** One-shot [resolve + incr] for cold paths. *)

  val add : counter -> string list -> int -> unit
  val set : gauge -> string list -> float -> unit
  val gauge_add : gauge -> string list -> float -> unit
  val observe : histogram -> string list -> float -> unit

  val series_count : t -> string -> int
  (** Distinct non-overflow series the family [name] holds in this
      registry ([0] for unknown families). *)

  val overflowed : t -> int
  (** Value of [obs.label_overflow]: spilled lookups across all
      families of this registry. *)
end

val default_latency_buckets : float list
(** Powers of ten from 100 ns to 1 s. *)

val ratio_buckets : float list
(** Buckets suited to mismatch ratios in [\[0, 1\]]. *)

val with_span : t -> string -> (unit -> 'a) -> 'a
(** [with_span t name f] times [f ()] and records the duration in ns
    into the histogram ["span:" ^ path] where [path] joins the names of
    all open spans with ["/"].  It {e also} records a trace span (see
    {!Trace}) as a child of the innermost open trace span.  The
    duration is recorded (and the span popped) even when [f] raises.
    On {!null} this is just [f ()]. *)

(** {1 Distributed tracing}

    Alongside the flat span histograms, every enabled registry keeps a
    bounded ring buffer of span {e instances}: trace id, span id, parent
    id, start/end timestamps from the registry clock, and string
    attributes.  Contexts propagate across the simulated wire via
    [Transport.Framing.Traced]; {!Trace.assemble} merges the buffers of
    many registries (one per simulated node) back into trees. *)

module Trace : sig
  type ctx = { trace_id : int; span_id : int }
  (** The propagated part of a span: enough to parent a remote child. *)

  type span = {
    trace_id : int;
    span_id : int;
    parent_id : int option;  (** [None] for a trace root *)
    name : string;
    node : string;  (** {!label} of the recording registry *)
    start_ns : float;
    end_ns : float;
    attrs : (string * string) list;  (** in the order they were added *)
  }

  val current : t -> ctx option
  (** Context of the innermost open trace span, to be carried across a
      process boundary.  [None] when no span is open (or on {!null}). *)

  val with_span :
    ?ctx:ctx -> ?attrs:(string * string) list -> t -> string -> (unit -> 'a) -> 'a
  (** Trace-only variant of {!Obs.with_span}: records a span instance
      but no histogram (so it never perturbs existing [span:*] metric
      names).  [ctx] explicitly parents the span — use it when
      continuing a context received from the wire; otherwise the
      innermost open span is the parent, and a fresh trace id is minted
      at top level.  On {!null} this is just [f ()]. *)

  val record :
    ?ctx:ctx ->
    ?attrs:(string * string) list ->
    t ->
    string ->
    start_ns:float ->
    end_ns:float ->
    unit
  (** Record an already-timed span (e.g. a network hop whose arrival
      time the simulator computed) without opening it on the stack. *)

  val add_attr : t -> string -> string -> unit
  (** Attach [key = value] to the innermost open span.  No-op when no
      span is open or on {!null}. *)

  val spans : t -> span list
  (** Buffered spans, oldest first. *)

  val set_capacity : t -> int -> unit
  (** Resize the ring buffer, discarding buffered spans.  Default
      capacity is 4096 spans; 0 disables buffering.  No-op on {!null}. *)

  val capacity : t -> int

  val dropped : t -> int
  (** Spans overwritten since the last {!clear}/[reset].  The ring also
      exports its own health as ordinary metrics, registered lazily on
      the first buffered span: the counter [obs.spans_dropped] mirrors
      this value and the gauge [obs.trace_buffer_depth] mirrors the live
      occupancy, so span loss shows up in scrapes without the Trace
      API. *)

  val clear : t -> unit
  (** Drop all buffered spans and abandon open ones. *)

  (** {2 Assembly} *)

  type tree = { span : span; children : tree list }
  (** Children are sorted by [start_ns]. *)

  type trace = {
    id : int;  (** the shared [trace_id] *)
    roots : tree list;
        (** true roots first, then orphaned subtrees, by start time *)
    orphans : span list;
        (** spans whose parent never surfaced (lost frame, ring
            overflow) or that sat on a parent cycle; they still appear
            under [roots] *)
    duplicates : int;  (** spans dropped for reusing a span id *)
    span_count : int;
  }

  val assemble : span list -> trace list
  (** Merge span dumps from any number of registries into per-trace
      trees, sorted by start time.  Never raises on malformed input:
      duplicates are counted and dropped, orphans are kept and flagged,
      cycles are broken. *)

  val trace_spans : trace -> span list
  (** All spans of an assembled trace, preorder. *)

  (** {2 Exporters} *)

  val to_chrome_json : trace list -> string
  (** Chrome trace-event JSON ("JSON Object Format"), loadable in
      Perfetto ({:https://ui.perfetto.dev}) or [chrome://tracing].  Node
      labels become processes; each trace gets its own [tid] row;
      attributes and ids land in each event's ["args"]. *)

  val to_waterfall : trace list -> string
  (** Plain-text waterfall: one indented line per span with start/end
      milliseconds relative to the trace start. *)
end

(** {1 Flight recorder}

    A post-mortem tool built on the trace ring: when an anomaly fires
    (breaker trip, shed burst, quarantine, eviction storm — hooks live
    in [Gateway], [Morph.Breaker] and [Morph.Receiver]), {!Flight.trigger}
    freezes the registry's buffered spans and a metrics snapshot into a
    bounded incident buffer.  Incidents export as Chrome-trace JSON
    (Perfetto-loadable) and as a text report; [morphctl] writes both to
    disk.  Triggers on a full buffer only count as suppressed, so an
    anomaly storm cannot grow memory without bound. *)

module Flight : sig
  type incident = {
    seq : int;  (** 1-based trigger order *)
    kind : string;  (** e.g. ["breaker_trip"], ["shed_burst"] *)
    reason : string;  (** free-form detail, e.g. the tenant id *)
    at_ns : float;  (** registry clock at trigger time *)
    spans : Trace.span list;  (** the ring's contents, oldest first *)
    metrics : string;  (** {!to_json_lines} snapshot at trigger time *)
  }

  type recorder

  val create : ?max_incidents:int -> t -> recorder
  (** Recorder over a registry (default capacity 8 incidents; raises on
      [< 1]).  Registers the counters [obs.flight.incidents] and
      [obs.flight.suppressed].  A recorder over {!null} is inert. *)

  val registry : recorder -> t

  val trigger : recorder -> kind:string -> reason:string -> unit
  (** Capture an incident now, or count it as suppressed when the
      buffer already holds [max_incidents].  No-op on {!null}. *)

  val incidents : recorder -> incident list
  (** Captured incidents, oldest first. *)

  val count : recorder -> int
  val suppressed : recorder -> int

  val clear : recorder -> unit
  (** Drop captured incidents and the suppressed count (the cumulative
      counters in the registry are untouched). *)

  val to_chrome_json : incident -> string
  (** The incident's frozen spans as Perfetto-loadable Chrome-trace
      JSON (see {!Trace.to_chrome_json}). *)

  val report : incident -> string
  (** Text incident report: header, metrics snapshot, span waterfall. *)
end

(** {1 Sinks} *)

type sink =
  | Null
  | Text of (string -> unit)  (** receives a rendered table *)
  | Json of (string -> unit)  (** receives line-oriented JSON *)

val emit : t -> sink -> unit

val names : t -> string list
(** Registered metric names, in registration order. *)

val render_table : t -> string
(** Human-readable table of every registered metric. *)

val to_json_lines : t -> string
(** One JSON object per line, ["\n"]-terminated.  Schema:
    [{"metric":NAME,"kind":"counter","unit":U,"value":N}] for counters
    and gauges; histograms add ["count"], ["sum"], ["min"], ["max"] and
    ["buckets":[{"le":BOUND,"n":N},...]] with ["le":"+inf"] last. *)

val to_prometheus : t -> string
(** Prometheus text exposition.  Series sharing a base name (a labeled
    family, or a single plain metric) are grouped under one
    [# TYPE base kind] line in registration order; metric names are
    sanitized to [\[a-zA-Z0-9_:\]] (dots become underscores) while label
    pairs from composed series names pass through verbatim.  Histograms
    emit cumulative [_bucket{le="..."}] series (["+Inf"] last) plus
    [_sum] and [_count]; never-set gauges read 0. *)
