(** Zero-dependency metrics and tracing for the morphing stack.

    A {!t} is a registry of named counters, gauges and fixed-bucket
    histograms.  Instrumented code holds pre-created {e handles} rather
    than looking metrics up by name on the hot path; every handle
    operation is a single mutable-field update guarded by one boolean,
    so a disabled registry ({!null}) costs one branch per event.

    Latencies are measured with {!with_span}, which times a thunk with
    the registry clock and records the duration (in nanoseconds) into a
    histogram named after the current span {e path}: nested spans
    concatenate their names with ["/"], so a span ["plan"] opened inside
    a span ["deliver"] records into the metric ["span:deliver/plan"],
    giving a flat registry the shape of a trace tree.

    Snapshots leave the registry through a {!sink}: a pretty text table,
    line-oriented JSON (one metric per line, the same schema the bench
    trajectory files use), or nothing. *)

type t
(** A metric registry.  Registries are independent; components accept
    one at construction time and default to {!null}. *)

val create : unit -> t
(** A fresh, enabled registry. *)

val null : t
(** The shared disabled registry.  Handles minted from it are inert:
    recording into them is a no-op and they register nothing. *)

val enabled : t -> bool

val reset : t -> unit
(** Zero every metric in [t] without forgetting registrations. *)

val set_clock : (unit -> float) -> unit
(** Replace the global span clock.  The clock returns nanoseconds as a
    float; it only needs to be monotonic between the start and end of a
    span.  The default derives from [Unix.gettimeofday].  Intended for
    tests and for callers that have a better monotonic source. *)

val now_ns : unit -> float
(** Read the current span clock. *)

module Counter : sig
  type h
  (** Handle to a monotonically increasing integer. *)

  val make : t -> ?unit_:string -> string -> h
  (** [make t name] registers (or re-attaches to) the counter [name].
      Raises [Invalid_argument] if [name] is already registered with a
      different metric kind. *)

  val incr : h -> unit
  val add : h -> int -> unit

  val value : t -> string -> int
  (** Current value, or [0] when [name] was never registered. *)
end

module Gauge : sig
  type h
  (** Handle to a last-write-wins float. *)

  val make : t -> ?unit_:string -> string -> h
  val set : h -> float -> unit

  val value : t -> string -> float option
  (** [None] until the gauge is first set. *)
end

module Histogram : sig
  type h
  (** Handle to a fixed-bucket histogram. *)

  type snapshot = {
    count : int;
    sum : float;
    min : float;  (** 0. when [count = 0] *)
    max : float;  (** 0. when [count = 0] *)
    buckets : (float * int) list;
        (** cumulative-free per-bucket counts, keyed by inclusive upper
            bound; the final bucket's bound is [infinity]. *)
  }

  val make : t -> ?unit_:string -> ?buckets:float list -> string -> h
  (** [make t name] registers histogram [name].  [buckets] lists the
      inclusive upper bounds in ascending order (an implicit [+inf]
      bucket is always appended); defaults to
      {!default_latency_buckets}. *)

  val observe : h -> float -> unit

  val snapshot : t -> string -> snapshot option
  val count : t -> string -> int
  val sum : t -> string -> float
end

val default_latency_buckets : float list
(** Powers of ten from 100 ns to 1 s. *)

val ratio_buckets : float list
(** Buckets suited to mismatch ratios in [\[0, 1\]]. *)

val with_span : t -> string -> (unit -> 'a) -> 'a
(** [with_span t name f] times [f ()] and records the duration in ns
    into the histogram ["span:" ^ path] where [path] joins the names of
    all open spans with ["/"].  The duration is recorded (and the span
    popped) even when [f] raises.  On {!null} this is just [f ()]. *)

(** {1 Sinks} *)

type sink =
  | Null
  | Text of (string -> unit)  (** receives a rendered table *)
  | Json of (string -> unit)  (** receives line-oriented JSON *)

val emit : t -> sink -> unit

val names : t -> string list
(** Registered metric names, in registration order. *)

val render_table : t -> string
(** Human-readable table of every registered metric. *)

val to_json_lines : t -> string
(** One JSON object per line, ["\n"]-terminated.  Schema:
    [{"metric":NAME,"kind":"counter","unit":U,"value":N}] for counters
    and gauges; histograms add ["count"], ["sum"], ["min"], ["max"] and
    ["buckets":[{"le":BOUND,"n":N},...]] with ["le":"+inf"] last. *)
