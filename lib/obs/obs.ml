(* Metric registry with handle-based recording.

   The design constraint is the null path: PR acceptance requires the
   instrumented hot loops (wire codec, receiver cache) to regress < 2 %
   when observability is off.  So components never look metrics up by
   name per event; they mint handles once and every handle carries its
   own [on] flag.  The disabled registry hands out shared inert handles
   backed by dummy cells, making each disabled record one load, one
   branch. *)

(* Clocks are per registry so independent registries (one per simulated
   node, or one per test, or one per domain) cannot leak virtual time
   into each other.  There is deliberately no process-wide override: a
   registry belongs to one domain, and ambient mutable state would make
   that ownership rule unenforceable. *)
let default_clock () = Unix.gettimeofday () *. 1e9

type counter_cell = { mutable n : int }

(* [gdelta] distinguishes gauges driven by up/down deltas ([Gauge.add])
   from last-write-wins gauges ([Gauge.set]): at merge time delta gauges
   sum across shards while set gauges keep the source value. *)
type gauge_cell = { mutable g : float; mutable gset : bool; mutable gdelta : bool }

type hist_cell = {
  bounds : float array; (* ascending upper bounds, excluding +inf *)
  hcounts : int array; (* length bounds + 1; last is the +inf bucket *)
  mutable hcount : int;
  mutable hsum : float;
  mutable hmin : float;
  mutable hmax : float;
}

type data =
  | Dcounter of counter_cell
  | Dgauge of gauge_cell
  | Dhist of hist_cell

type entry = { ename : string; eunit : string option; data : data }

(* A labeled-metric family: one registration covering many {e series},
   each keyed by a tuple of label values.  A series is an ordinary
   registry entry whose name is the composed ["family{k=\"v\",...}"]
   string, so every existing path (merge, reset, rendering, JSON) works
   on series unchanged.  [fam_series] counts distinct non-overflow
   series minted {e by this registry}; at [fam_cap] further tuples spill
   into the reserved all-["other"] series named [fam_other]. *)
type family = {
  fam_name : string;
  fam_keys : string list;
  fam_kind : string; (* "counter" | "gauge" | "histogram" *)
  fam_unit : string option;
  fam_buckets : float list; (* histogram families only *)
  fam_cap : int;
  fam_other : string;
  mutable fam_series : int;
}

let label_escape v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (fun ch ->
       match ch with
       | '"' -> Buffer.add_string buf "\\\""
       | '\\' -> Buffer.add_string buf "\\\\"
       | '\n' -> Buffer.add_string buf "\\n"
       | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

(* ["family{k=\"v\",k2=\"v2\"}"] — exactly the prometheus series syntax,
   so composed names pass through the text exposition verbatim. *)
let compose_series name keys values =
  let buf = Buffer.create (String.length name + 16) in
  Buffer.add_string buf name;
  Buffer.add_char buf '{';
  let first = ref true in
  List.iter2
    (fun k v ->
       if !first then first := false else Buffer.add_char buf ',';
       Buffer.add_string buf k;
       Buffer.add_string buf "=\"";
       Buffer.add_string buf (label_escape v);
       Buffer.add_char buf '"')
    keys values;
  Buffer.add_char buf '}';
  Buffer.contents buf

(* A finished (or still-open) trace span instance.  [sp_parent] is 0 for a
   root; [sp_attrs] is kept newest-first and reversed on export. *)
type tr_span = {
  sp_trace : int;
  sp_id : int;
  sp_parent : int;
  sp_name : string;
  sp_node : string;
  sp_start : float;
  mutable sp_end : float;
  mutable sp_attrs : (string * string) list;
}

type t = {
  on : bool;
  label : string;
  mutable clock : unit -> float;
  tbl : (string, entry) Hashtbl.t;
  mutable rev_order : entry list;
  families : (string, family) Hashtbl.t;
  (* lazily-interned cells for the registry's own telemetry, cached so
     the hot paths that update them stay a couple of field writes *)
  mutable ovf_cell : counter_cell option; (* obs.label_overflow *)
  mutable selftr_cells : (counter_cell * gauge_cell) option;
      (* obs.spans_dropped, obs.trace_buffer_depth *)
  mutable spans : string list; (* innermost first *)
  (* trace ring buffer: [tr_head] indexes the oldest stored span,
     [tr_len] counts stored spans, writes go to (head + len) mod cap *)
  mutable tr_cap : int;
  mutable tr_buf : tr_span array;
  mutable tr_head : int;
  mutable tr_len : int;
  mutable tr_dropped : int;
  mutable tr_stack : tr_span list; (* open trace spans, innermost first *)
}

let default_trace_capacity = 4096

let create ?(label = "main") () =
  {
    on = true;
    label;
    clock = default_clock;
    tbl = Hashtbl.create 64;
    rev_order = [];
    families = Hashtbl.create 8;
    ovf_cell = None;
    selftr_cells = None;
    spans = [];
    tr_cap = default_trace_capacity;
    tr_buf = [||];
    tr_head = 0;
    tr_len = 0;
    tr_dropped = 0;
    tr_stack = [];
  }

let null =
  {
    on = false;
    label = "null";
    clock = default_clock;
    tbl = Hashtbl.create 1;
    rev_order = [];
    families = Hashtbl.create 1;
    ovf_cell = None;
    selftr_cells = None;
    spans = [];
    tr_cap = 0;
    tr_buf = [||];
    tr_head = 0;
    tr_len = 0;
    tr_dropped = 0;
    tr_stack = [];
  }

let enabled t = t.on
let label t = t.label
let set_registry_clock t f = if t.on then t.clock <- f

let now t = t.clock ()

let default_latency_buckets = [ 1e2; 1e3; 1e4; 1e5; 1e6; 1e7; 1e8; 1e9 ]
let ratio_buckets = [ 0.0; 0.05; 0.1; 0.2; 0.3; 0.5; 0.75; 1.0 ]

let kind_name = function
  | Dcounter _ -> "counter"
  | Dgauge _ -> "gauge"
  | Dhist _ -> "histogram"

let same_kind a b =
  match (a, b) with
  | Dcounter _, Dcounter _ | Dgauge _, Dgauge _ | Dhist _, Dhist _ -> true
  | _ -> false

(* Get the entry for [name], creating it with [fresh ()] on first use.
   Re-attaching to an existing name of the same kind returns the
   existing cell, so two components sharing a registry aggregate into
   one metric; a kind clash is a programming error. *)
let intern t name unit_ fresh =
  match Hashtbl.find_opt t.tbl name with
  | Some e ->
    if not (same_kind e.data (fresh ())) then
      invalid_arg
        (Printf.sprintf "Obs: metric %S already registered as a %s" name
           (kind_name e.data));
    e
  | None ->
    let e = { ename = name; eunit = unit_; data = fresh () } in
    Hashtbl.add t.tbl name e;
    t.rev_order <- e :: t.rev_order;
    e

let reset (t : t) =
  List.iter
    (fun e ->
       match e.data with
       | Dcounter c -> c.n <- 0
       | Dgauge g ->
         g.g <- 0.;
         g.gset <- false;
         g.gdelta <- false
       | Dhist h ->
         Array.fill h.hcounts 0 (Array.length h.hcounts) 0;
         h.hcount <- 0;
         h.hsum <- 0.;
         h.hmin <- infinity;
         h.hmax <- neg_infinity)
    t.rev_order;
  t.spans <- [];
  t.tr_buf <- [||];
  t.tr_head <- 0;
  t.tr_len <- 0;
  t.tr_dropped <- 0;
  t.tr_stack <- []

(* Distinct non-overflow series of [fam] present in [t], by scanning for
   the composed-name prefix.  Used to refresh [fam_series] after a merge
   so the cardinality cap keeps meaning "series this registry holds". *)
let count_series (t : t) (fam : family) =
  let prefix = fam.fam_name ^ "{" in
  let plen = String.length prefix in
  Hashtbl.fold
    (fun k _ acc ->
       if
         String.length k > plen
         && String.sub k 0 plen = prefix
         && k <> fam.fam_other
       then acc + 1
       else acc)
    t.tbl 0

(* Scrape-time aggregation across per-domain (or per-shard) registries.
   Counters add, delta gauges ([Gauge.add]) sum, set gauges take the
   source value when it was ever set, histograms add bucket-wise when
   the bounds agree.  Entries missing from [into] are created on first
   merge, so merging N registries into a fresh one yields the union in
   [src] registration order.  Labeled series merge like any other entry
   (shard-disjoint label sets union; matching series aggregate,
   including the reserved ["other"] overflow series); family metadata is
   copied over and [into]'s per-family series counts are refreshed.
   Cardinality caps apply at record time per shard, never at merge, so a
   union of capped shards may legitimately exceed one shard's cap. *)
let merge_into ~(into : t) (src : t) =
  if into.on then begin
    List.iter
      (fun (se : entry) ->
         match se.data with
         | Dcounter sc ->
           let e = intern into se.ename se.eunit (fun () -> Dcounter { n = 0 }) in
           (match e.data with
            | Dcounter c -> c.n <- c.n + sc.n
            | _ -> assert false)
         | Dgauge sg ->
           let e =
             intern into se.ename se.eunit (fun () ->
                 Dgauge { g = 0.; gset = false; gdelta = false })
           in
           (match e.data with
            | Dgauge g ->
              if sg.gset then
                if sg.gdelta then begin
                  g.g <- g.g +. sg.g;
                  g.gset <- true;
                  g.gdelta <- true
                end
                else begin
                  g.g <- sg.g;
                  g.gset <- true;
                  g.gdelta <- false
                end
            | _ -> assert false)
         | Dhist sh ->
           let e =
             intern into se.ename se.eunit (fun () ->
                 Dhist
                   {
                     bounds = Array.copy sh.bounds;
                     hcounts = Array.make (Array.length sh.hcounts) 0;
                     hcount = 0;
                     hsum = 0.;
                     hmin = infinity;
                     hmax = neg_infinity;
                   })
           in
           (match e.data with
            | Dhist h when h.bounds = sh.bounds ->
              Array.iteri (fun i n -> h.hcounts.(i) <- h.hcounts.(i) + n)
                sh.hcounts;
              h.hcount <- h.hcount + sh.hcount;
              h.hsum <- h.hsum +. sh.hsum;
              if sh.hcount > 0 then begin
                if sh.hmin < h.hmin then h.hmin <- sh.hmin;
                if sh.hmax > h.hmax then h.hmax <- sh.hmax
              end
            | Dhist _ ->
              invalid_arg
                (Printf.sprintf
                   "Obs.merge_into: histogram %S has different buckets"
                   se.ename)
            | _ -> assert false))
      (List.rev src.rev_order);
    Hashtbl.iter
      (fun name (sf : family) ->
         match Hashtbl.find_opt into.families name with
         | Some f ->
           if f.fam_kind <> sf.fam_kind then
             invalid_arg
               (Printf.sprintf
                  "Obs.merge_into: family %S is a %s family here but a %s \
                   family in the source"
                  name f.fam_kind sf.fam_kind);
           f.fam_series <- count_series into f
         | None ->
           let f = { sf with fam_series = 0 } in
           f.fam_series <- count_series into f;
           Hashtbl.replace into.families name f)
      src.families
  end

let merged ?label srcs =
  let into = create ?label () in
  List.iter (fun src -> merge_into ~into src) srcs;
  into

(* Span and trace ids come from one process-wide counter so spans from
   different registries (one per simulated node, possibly on different
   domains) can be merged without collisions.  0 is reserved for "no
   parent"; the counter is atomic so ids stay unique across domains. *)
let id_counter = Atomic.make 0
let next_id () = Atomic.fetch_and_add id_counter 1 + 1

type trace_ctx = { trace_id : int; span_id : int }

(* The ring's own health as ordinary metrics, registered lazily on the
   first buffered span so registries that never trace keep their metric
   set unchanged.  [obs.spans_dropped] mirrors [Trace.dropped] and
   [obs.trace_buffer_depth] mirrors the live occupancy, so span loss is
   visible in any scrape instead of only via the Trace API. *)
let selftr_cells t =
  match t.selftr_cells with
  | Some cells -> cells
  | None ->
    let ce = intern t "obs.spans_dropped" None (fun () -> Dcounter { n = 0 }) in
    let ge =
      intern t "obs.trace_buffer_depth" (Some "spans") (fun () ->
          Dgauge { g = 0.; gset = false; gdelta = false })
    in
    let cells =
      ( (match ce.data with Dcounter c -> c | _ -> assert false),
        (match ge.data with Dgauge g -> g | _ -> assert false) )
    in
    t.selftr_cells <- Some cells;
    cells

let tr_push t sp =
  if t.tr_cap > 0 then begin
    if Array.length t.tr_buf = 0 then t.tr_buf <- Array.make t.tr_cap sp;
    if t.tr_len = t.tr_cap then begin
      t.tr_buf.(t.tr_head) <- sp;
      t.tr_head <- (t.tr_head + 1) mod t.tr_cap;
      t.tr_dropped <- t.tr_dropped + 1;
      let dc, _ = selftr_cells t in
      dc.n <- dc.n + 1
    end
    else begin
      t.tr_buf.((t.tr_head + t.tr_len) mod t.tr_cap) <- sp;
      t.tr_len <- t.tr_len + 1;
      let _, dg = selftr_cells t in
      dg.g <- float_of_int t.tr_len;
      dg.gset <- true
    end
  end

let open_trace_span ?ctx t name t0 =
  let parent, trace =
    match ctx with
    | Some c -> (c.span_id, c.trace_id)
    | None -> (
      match t.tr_stack with
      | sp :: _ -> (sp.sp_id, sp.sp_trace)
      | [] -> (0, next_id ()))
  in
  let sp =
    {
      sp_trace = trace;
      sp_id = next_id ();
      sp_parent = parent;
      sp_name = name;
      sp_node = t.label;
      sp_start = t0;
      sp_end = t0;
      sp_attrs = [];
    }
  in
  t.tr_stack <- sp :: t.tr_stack;
  sp

let close_trace_span t sp t1 =
  sp.sp_end <- t1;
  (match t.tr_stack with [] -> () | _ :: rest -> t.tr_stack <- rest);
  tr_push t sp

module Counter = struct
  type h = { on : bool; cell : counter_cell }

  let inert = { on = false; cell = { n = 0 } }

  let make (t : t) ?unit_ name =
    if not t.on then inert
    else
      let e = intern t name unit_ (fun () -> Dcounter { n = 0 }) in
      (match e.data with
       | Dcounter c -> { on = true; cell = c }
       | _ -> assert false)

  let incr h = if h.on then h.cell.n <- h.cell.n + 1
  let add h k = if h.on then h.cell.n <- h.cell.n + k

  let value (t : t) name =
    match Hashtbl.find_opt t.tbl name with
    | Some { data = Dcounter c; _ } -> c.n
    | _ -> 0
end

module Gauge = struct
  type h = { on : bool; cell : gauge_cell }

  let inert = { on = false; cell = { g = 0.; gset = false; gdelta = false } }

  let make (t : t) ?unit_ name =
    if not t.on then inert
    else
      let e =
        intern t name unit_ (fun () ->
            Dgauge { g = 0.; gset = false; gdelta = false })
      in
      (match e.data with
       | Dgauge g -> { on = true; cell = g }
       | _ -> assert false)

  let set h v =
    if h.on then begin
      h.cell.g <- v;
      h.cell.gset <- true;
      h.cell.gdelta <- false
    end

  (* Up/down delta.  Unlike read-modify-write around [set], deltas
     survive scrape-time merging: each shard accumulates its own +/-
     and [merge_into] sums them, so a depth gauge split across domains
     reports the true total instead of one shard's last write. *)
  let add h d =
    if h.on then begin
      h.cell.g <- h.cell.g +. d;
      h.cell.gset <- true;
      h.cell.gdelta <- true
    end

  let value (t : t) name =
    match Hashtbl.find_opt t.tbl name with
    | Some { data = Dgauge g; _ } when g.gset -> Some g.g
    | _ -> None
end

module Histogram = struct
  type h = { on : bool; cell : hist_cell }

  type snapshot = {
    count : int;
    sum : float;
    min : float;
    max : float;
    buckets : (float * int) list;
  }

  let fresh_cell buckets =
    let bounds = Array.of_list buckets in
    Array.iteri
      (fun i b ->
         if i > 0 && b <= bounds.(i - 1) then
           invalid_arg "Obs.Histogram.make: buckets must be strictly ascending")
      bounds;
    {
      bounds;
      hcounts = Array.make (Array.length bounds + 1) 0;
      hcount = 0;
      hsum = 0.;
      hmin = infinity;
      hmax = neg_infinity;
    }

  let inert = { on = false; cell = fresh_cell [] }

  let make (t : t) ?unit_ ?(buckets = default_latency_buckets) name =
    if not t.on then inert
    else
      let e = intern t name unit_ (fun () -> Dhist (fresh_cell buckets)) in
      (match e.data with
       | Dhist c -> { on = true; cell = c }
       | _ -> assert false)

  let observe h v =
    if h.on then begin
      let c = h.cell in
      let n = Array.length c.bounds in
      let i = ref 0 in
      while !i < n && v > c.bounds.(!i) do
        incr i
      done;
      c.hcounts.(!i) <- c.hcounts.(!i) + 1;
      c.hcount <- c.hcount + 1;
      c.hsum <- c.hsum +. v;
      if v < c.hmin then c.hmin <- v;
      if v > c.hmax then c.hmax <- v
    end

  let snapshot_cell c =
    let buckets =
      Array.to_list
        (Array.mapi
           (fun i n ->
              let le =
                if i < Array.length c.bounds then c.bounds.(i) else infinity
              in
              (le, n))
           c.hcounts)
    in
    {
      count = c.hcount;
      sum = c.hsum;
      min = (if c.hcount = 0 then 0. else c.hmin);
      max = (if c.hcount = 0 then 0. else c.hmax);
      buckets;
    }

  let snapshot (t : t) name =
    match Hashtbl.find_opt t.tbl name with
    | Some { data = Dhist c; _ } -> Some (snapshot_cell c)
    | _ -> None

  let count (t : t) name =
    match snapshot t name with Some s -> s.count | None -> 0

  let sum (t : t) name = match snapshot t name with Some s -> s.sum | None -> 0.

  (* Conservative bucket-based estimate: the upper bound of the bucket
     holding the rank-[ceil (q * count)] observation, clamped to the
     observed extrema so q=0 and q=1 stay meaningful.  Samples landing in
     the implicit +inf bucket report [s.max]. *)
  let quantile (s : snapshot) (q : float) : float =
    if s.count = 0 then 0.
    else begin
      (* every q maps to a defined rank: NaN and q <= 0 to the lowest
         sample, q >= 1 to the highest; a single-sample snapshot has
         min = max, so the clamp below returns that sample exactly *)
      let q = if not (q >= 0.) then 0. else if q > 1. then 1. else q in
      let rank =
        let r = int_of_float (ceil (q *. float_of_int s.count)) in
        if r < 1 then 1 else r
      in
      let rec walk cum = function
        | [] -> s.max
        | (le, n) :: rest ->
          let cum = cum + n in
          if cum >= rank then
            if le = infinity then s.max
            else if le > s.max then s.max
            else if le < s.min then s.min
            else le
          else walk cum rest
      in
      walk 0 s.buckets
    end
end

(* --- labeled families --------------------------------------------------- *)

let label_overflow_name = "obs.label_overflow"

let overflow_incr t =
  let c =
    match t.ovf_cell with
    | Some c -> c
    | None ->
      let e =
        intern t label_overflow_name None (fun () -> Dcounter { n = 0 })
      in
      let c = match e.data with Dcounter c -> c | _ -> assert false in
      t.ovf_cell <- Some c;
      c
  in
  c.n <- c.n + 1

module Labeled = struct
  let default_cardinality = 64
  let overflow_value = "other"

  (* One representation for all three kinds; the mli exposes them as
     distinct abstract types so a counter family cannot hand out gauge
     handles.  [lf = None] is the inert family from {!null}. *)
  type fh = { lt : t; lf : family option }
  type counter = fh
  type gauge = fh
  type histogram = fh

  let make_family (t : t) ?unit_ ?(cardinality = default_cardinality) ~kind
      ~buckets ~keys name =
    if keys = [] then
      invalid_arg "Obs.Labeled: a family needs at least one label key";
    if cardinality < 1 then
      invalid_arg "Obs.Labeled: cardinality must be >= 1";
    List.iter
      (fun k ->
         if k = "" then invalid_arg "Obs.Labeled: empty label key";
         String.iter
           (fun ch ->
              match ch with
              | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> ()
              | _ ->
                invalid_arg
                  (Printf.sprintf
                     "Obs.Labeled: label key %S: use [A-Za-z0-9_]" k))
           k)
      keys;
    (* histogram bounds are validated eagerly so a bad bucket list fails
       at registration, not on the first spilled observation *)
    if kind = "histogram" then ignore (Histogram.fresh_cell buckets);
    if not t.on then { lt = t; lf = None }
    else
      match Hashtbl.find_opt t.families name with
      | Some f ->
        if f.fam_kind <> kind then
          invalid_arg
            (Printf.sprintf "Obs: family %S already registered as a %s family"
               name f.fam_kind);
        if f.fam_keys <> keys then
          invalid_arg
            (Printf.sprintf
               "Obs: family %S already registered with label keys [%s]" name
               (String.concat "; " f.fam_keys));
        { lt = t; lf = Some f }
      | None ->
        let fam =
          {
            fam_name = name;
            fam_keys = keys;
            fam_kind = kind;
            fam_unit = unit_;
            fam_buckets = buckets;
            fam_cap = cardinality;
            fam_other =
              compose_series name keys
                (List.map (fun _ -> overflow_value) keys);
            fam_series = 0;
          }
        in
        Hashtbl.replace t.families name fam;
        { lt = t; lf = Some fam }

  let counter t ?unit_ ?cardinality ~keys name : counter =
    make_family t ?unit_ ?cardinality ~kind:"counter" ~buckets:[] ~keys name

  let gauge t ?unit_ ?cardinality ~keys name : gauge =
    make_family t ?unit_ ?cardinality ~kind:"gauge" ~buckets:[] ~keys name

  let histogram t ?unit_ ?(buckets = default_latency_buckets) ?cardinality
      ~keys name : histogram =
    make_family t ?unit_ ?cardinality ~kind:"histogram" ~buckets ~keys name

  let fresh_of fam () =
    match fam.fam_kind with
    | "counter" -> Dcounter { n = 0 }
    | "gauge" -> Dgauge { g = 0.; gset = false; gdelta = false }
    | _ -> Dhist (Histogram.fresh_cell fam.fam_buckets)

  (* Series lookup: under the cap a new tuple interns a fresh entry;
     at the cap the tuple routes to the reserved all-[other] series and
     bumps [obs.label_overflow] once per spilled lookup.  Asking for
     the [other] tuple explicitly is always valid and never counts as a
     spill (nor against the cap) — which is why [other] is a reserved
     label value. *)
  let resolve (h : fh) values : entry option =
    match h.lf with
    | None -> None
    | Some fam ->
      let t = h.lt in
      if List.length values <> List.length fam.fam_keys then
        invalid_arg
          (Printf.sprintf
             "Obs.Labeled: family %S expects %d label values, got %d"
             fam.fam_name
             (List.length fam.fam_keys)
             (List.length values));
      let name = compose_series fam.fam_name fam.fam_keys values in
      if name = fam.fam_other then
        Some (intern t name fam.fam_unit (fresh_of fam))
      else
        match Hashtbl.find_opt t.tbl name with
        | Some e ->
          if kind_name e.data <> fam.fam_kind then
            invalid_arg
              (Printf.sprintf "Obs: metric %S already registered as a %s" name
                 (kind_name e.data));
          Some e
        | None ->
          if fam.fam_series < fam.fam_cap then begin
            fam.fam_series <- fam.fam_series + 1;
            Some (intern t name fam.fam_unit (fresh_of fam))
          end
          else begin
            overflow_incr t;
            Some (intern t fam.fam_other fam.fam_unit (fresh_of fam))
          end

  let counter_series (h : counter) values : Counter.h =
    match resolve h values with
    | None -> Counter.inert
    | Some e -> (
      match e.data with
      | Dcounter c -> { Counter.on = true; cell = c }
      | _ -> assert false)

  let gauge_series (h : gauge) values : Gauge.h =
    match resolve h values with
    | None -> Gauge.inert
    | Some e -> (
      match e.data with
      | Dgauge g -> { Gauge.on = true; cell = g }
      | _ -> assert false)

  let histogram_series (h : histogram) values : Histogram.h =
    match resolve h values with
    | None -> Histogram.inert
    | Some e -> (
      match e.data with
      | Dhist c -> { Histogram.on = true; cell = c }
      | _ -> assert false)

  (* One-shot conveniences for cold paths; hot paths should memoize the
     series handle instead (one hashtable probe + string build each). *)
  let incr h values = Counter.incr (counter_series h values)
  let add h values k = Counter.add (counter_series h values) k
  let set h values v = Gauge.set (gauge_series h values) v
  let gauge_add h values d = Gauge.add (gauge_series h values) d
  let observe h values v = Histogram.observe (histogram_series h values) v

  let series_count (t : t) name =
    match Hashtbl.find_opt t.families name with
    | Some f -> f.fam_series
    | None -> 0

  let overflowed (t : t) = Counter.value t label_overflow_name
end

let with_span (t : t) name f =
  if not t.on then f ()
  else begin
    t.spans <- name :: t.spans;
    let path = String.concat "/" (List.rev t.spans) in
    let h = Histogram.make t ~unit_:"ns" ("span:" ^ path) in
    let t0 = now t in
    let sp = open_trace_span t name t0 in
    Fun.protect
      ~finally:(fun () ->
        let t1 = now t in
        Histogram.observe h (t1 -. t0);
        close_trace_span t sp t1;
        match t.spans with [] -> () | _ :: rest -> t.spans <- rest)
      f
  end

(* --- rendering --------------------------------------------------------- *)

let names (t : t) = List.rev_map (fun e -> e.ename) t.rev_order

let entries (t : t) = List.rev t.rev_order

let fmt_float f =
  if Float.is_nan f || f = infinity || f = neg_infinity then "0"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.3f" f

let fmt_bound le = if le = infinity then "+inf" else Printf.sprintf "%g" le

let render_table t =
  let buf = Buffer.create 1024 in
  let es = entries t in
  let width =
    List.fold_left (fun w e -> max w (String.length e.ename)) 6 es
  in
  Buffer.add_string buf
    (Printf.sprintf "%-*s  %-9s  %s\n" width "metric" "kind" "value");
  Buffer.add_string buf
    (Printf.sprintf "%-*s  %-9s  %s\n" width "------" "----" "-----");
  List.iter
    (fun e ->
       let unit_suffix =
         match e.eunit with None -> "" | Some u -> " " ^ u
       in
       match e.data with
       | Dcounter c ->
         Buffer.add_string buf
           (Printf.sprintf "%-*s  %-9s  %d%s\n" width e.ename "counter" c.n
              unit_suffix)
       | Dgauge g ->
         let v = if g.gset then fmt_float g.g else "-" in
         Buffer.add_string buf
           (Printf.sprintf "%-*s  %-9s  %s%s\n" width e.ename "gauge" v
              unit_suffix)
       | Dhist c ->
         let s = Histogram.snapshot_cell c in
         let mean = if s.count = 0 then 0. else s.sum /. float_of_int s.count in
         Buffer.add_string buf
           (Printf.sprintf
              "%-*s  %-9s  count=%d mean=%s min=%s max=%s%s\n" width e.ename
              "histogram" s.count (fmt_float mean) (fmt_float s.min)
              (fmt_float s.max) unit_suffix);
         if s.count > 0 then begin
           Buffer.add_string buf (Printf.sprintf "%-*s    " width "");
           Buffer.add_string buf
             (String.concat "  "
                (List.filter_map
                   (fun (le, n) ->
                      if n = 0 then None
                      else Some (Printf.sprintf "le %s: %d" (fmt_bound le) n))
                   s.buckets));
           Buffer.add_char buf '\n'
         end)
    es;
  Buffer.contents buf

(* JSON helpers: numbers must be finite, strings escaped. *)

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun ch ->
       match ch with
       | '"' -> Buffer.add_string buf "\\\""
       | '\\' -> Buffer.add_string buf "\\\\"
       | '\n' -> Buffer.add_string buf "\\n"
       | '\r' -> Buffer.add_string buf "\\r"
       | '\t' -> Buffer.add_string buf "\\t"
       | c when Char.code c < 0x20 ->
         Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_float f =
  if Float.is_nan f || f = infinity || f = neg_infinity then "0"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let to_json_lines t =
  let buf = Buffer.create 1024 in
  List.iter
    (fun e ->
       let unit_ = match e.eunit with None -> "" | Some u -> u in
       let head =
         Printf.sprintf "{\"metric\":\"%s\",\"kind\":\"%s\",\"unit\":\"%s\""
           (json_escape e.ename) (kind_name e.data) (json_escape unit_)
       in
       Buffer.add_string buf head;
       (match e.data with
        | Dcounter c -> Buffer.add_string buf (Printf.sprintf ",\"value\":%d" c.n)
        | Dgauge g ->
          Buffer.add_string buf
            (Printf.sprintf ",\"value\":%s" (json_float (if g.gset then g.g else 0.)))
        | Dhist c ->
          let s = Histogram.snapshot_cell c in
          Buffer.add_string buf
            (Printf.sprintf ",\"count\":%d,\"sum\":%s,\"min\":%s,\"max\":%s"
               s.count (json_float s.sum) (json_float s.min) (json_float s.max));
          Buffer.add_string buf ",\"buckets\":[";
          Buffer.add_string buf
            (String.concat ","
               (List.map
                  (fun (le, n) ->
                     let le_json =
                       if le = infinity then "\"+inf\"" else json_float le
                     in
                     Printf.sprintf "{\"le\":%s,\"n\":%d}" le_json n)
                  s.buckets));
          Buffer.add_char buf ']');
       Buffer.add_string buf "}\n")
    (entries t);
  Buffer.contents buf

(* --- prometheus text exposition ---------------------------------------- *)

(* Prometheus metric names allow [a-zA-Z0-9_:]; dots (and anything else)
   become underscores.  Label pairs inside a composed series name are
   already in prometheus syntax and pass through untouched. *)
let prom_name name =
  String.map
    (fun c ->
       match c with
       | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
       | _ -> '_')
    name

let split_series name =
  match String.index_opt name '{' with
  | Some i when String.length name > 0 && name.[String.length name - 1] = '}'
    ->
    (String.sub name 0 i, Some (String.sub name (i + 1) (String.length name - i - 2)))
  | _ -> (name, None)

let prom_bound le = if le = infinity then "+Inf" else Printf.sprintf "%g" le

let to_prometheus t =
  let buf = Buffer.create 2048 in
  (* group series under their family base name, preserving first-seen
     registration order, so each base gets exactly one # TYPE line *)
  let order = ref [] in
  let by_base : (string, (entry * string option) list) Hashtbl.t =
    Hashtbl.create 32
  in
  List.iter
    (fun e ->
       let base, labels = split_series e.ename in
       match Hashtbl.find_opt by_base base with
       | Some l -> Hashtbl.replace by_base base ((e, labels) :: l)
       | None ->
         Hashtbl.add by_base base [ (e, labels) ];
         order := base :: !order)
    (entries t);
  List.iter
    (fun base ->
       let members = List.rev (Hashtbl.find by_base base) in
       let pbase = prom_name base in
       (match members with
        | (e, _) :: _ ->
          Buffer.add_string buf
            (Printf.sprintf "# TYPE %s %s\n" pbase (kind_name e.data))
        | [] -> ());
       List.iter
         (fun (e, labels) ->
            let series suffix extra v =
              let lbl =
                match (labels, extra) with
                | None, [] -> ""
                | None, l -> "{" ^ String.concat "," l ^ "}"
                | Some l, [] -> "{" ^ l ^ "}"
                | Some l, extra -> "{" ^ l ^ "," ^ String.concat "," extra ^ "}"
              in
              Buffer.add_string buf
                (Printf.sprintf "%s%s%s %s\n" pbase suffix lbl v)
            in
            match e.data with
            | Dcounter c -> series "" [] (string_of_int c.n)
            | Dgauge g -> series "" [] (json_float (if g.gset then g.g else 0.))
            | Dhist c ->
              let s = Histogram.snapshot_cell c in
              let cum = ref 0 in
              List.iter
                (fun (le, n) ->
                   cum := !cum + n;
                   series "_bucket"
                     [ Printf.sprintf "le=\"%s\"" (prom_bound le) ]
                     (string_of_int !cum))
                s.buckets;
              series "_sum" [] (json_float s.sum);
              series "_count" [] (string_of_int s.count))
         members)
    (List.rev !order);
  Buffer.contents buf

type sink = Null | Text of (string -> unit) | Json of (string -> unit)

let emit t = function
  | Null -> ()
  | Text k -> k (render_table t)
  | Json k -> k (to_json_lines t)

(* --- distributed tracing ----------------------------------------------- *)

module Trace = struct
  type ctx = trace_ctx = { trace_id : int; span_id : int }

  type span = {
    trace_id : int;
    span_id : int;
    parent_id : int option;
    name : string;
    node : string;
    start_ns : float;
    end_ns : float;
    attrs : (string * string) list;
  }

  let note_depth t =
    match t.selftr_cells with
    | Some (_, dg) -> dg.g <- float_of_int t.tr_len
    | None -> ()

  let set_capacity t n =
    if t.on then begin
      if n < 0 then invalid_arg "Obs.Trace.set_capacity: negative capacity";
      t.tr_cap <- n;
      t.tr_buf <- [||];
      t.tr_head <- 0;
      t.tr_len <- 0;
      t.tr_dropped <- 0;
      note_depth t
    end

  let capacity t = t.tr_cap
  let dropped t = t.tr_dropped

  let clear t =
    t.tr_buf <- [||];
    t.tr_head <- 0;
    t.tr_len <- 0;
    t.tr_dropped <- 0;
    t.tr_stack <- [];
    note_depth t

  let current t =
    match t.tr_stack with
    | sp :: _ -> Some { trace_id = sp.sp_trace; span_id = sp.sp_id }
    | [] -> None

  let add_attr t k v =
    match t.tr_stack with
    | sp :: _ -> sp.sp_attrs <- (k, v) :: sp.sp_attrs
    | [] -> ()

  let export sp =
    {
      trace_id = sp.sp_trace;
      span_id = sp.sp_id;
      parent_id = (if sp.sp_parent = 0 then None else Some sp.sp_parent);
      name = sp.sp_name;
      node = sp.sp_node;
      start_ns = sp.sp_start;
      end_ns = sp.sp_end;
      attrs = List.rev sp.sp_attrs;
    }

  let spans t =
    List.init t.tr_len (fun i -> export t.tr_buf.((t.tr_head + i) mod t.tr_cap))

  let with_span ?ctx ?(attrs = []) t name f =
    if not t.on then f ()
    else begin
      let t0 = now t in
      let sp = open_trace_span ?ctx t name t0 in
      sp.sp_attrs <- List.rev attrs;
      Fun.protect ~finally:(fun () -> close_trace_span t sp (now t)) f
    end

  let record ?ctx ?(attrs = []) t name ~start_ns ~end_ns =
    if t.on then begin
      let parent, trace =
        match ctx with
        | Some (c : ctx) -> (c.span_id, c.trace_id)
        | None -> (
          match t.tr_stack with
          | sp :: _ -> (sp.sp_id, sp.sp_trace)
          | [] -> (0, next_id ()))
      in
      tr_push t
        {
          sp_trace = trace;
          sp_id = next_id ();
          sp_parent = parent;
          sp_name = name;
          sp_node = t.label;
          sp_start = start_ns;
          sp_end = end_ns;
          sp_attrs = List.rev attrs;
        }
    end

  (* --- assembly -------------------------------------------------------- *)

  type tree = { span : span; children : tree list }

  type trace = {
    id : int;
    roots : tree list;
    orphans : span list;
    duplicates : int;
    span_count : int;
  }

  let by_start a b = compare a.start_ns b.start_ns

  (* Merge span dumps from any number of registries into per-trace trees.
     Assembly is deliberately forgiving: duplicate span ids (frame
     duplication) are counted and dropped, spans whose parent is missing
     (ring overflow, lost frame) become roots and are reported as
     orphans, and parent cycles are broken rather than looping. *)
  let assemble (all : span list) : trace list =
    let seen = Hashtbl.create 64 in
    let dup_counts = Hashtbl.create 8 in
    let uniq =
      List.filter
        (fun s ->
           if Hashtbl.mem seen s.span_id then begin
             Hashtbl.replace dup_counts s.trace_id
               (1
                +
                match Hashtbl.find_opt dup_counts s.trace_id with
                | Some n -> n
                | None -> 0);
             false
           end
           else begin
             Hashtbl.add seen s.span_id ();
             true
           end)
        all
    in
    let groups = Hashtbl.create 16 in
    List.iter
      (fun s ->
         let l =
           match Hashtbl.find_opt groups s.trace_id with
           | Some l -> l
           | None -> []
         in
         Hashtbl.replace groups s.trace_id (s :: l))
      uniq;
    let traces =
      Hashtbl.fold
        (fun id rev_members acc ->
           let members = List.rev rev_members in
           let by_id = Hashtbl.create 16 in
           List.iter (fun s -> Hashtbl.replace by_id s.span_id s) members;
           let child_tbl = Hashtbl.create 16 in
           let roots = ref [] in
           let orphans = ref [] in
           List.iter
             (fun s ->
                match s.parent_id with
                | None -> roots := s :: !roots
                | Some p when Hashtbl.mem by_id p ->
                  let l =
                    match Hashtbl.find_opt child_tbl p with
                    | Some l -> l
                    | None -> []
                  in
                  Hashtbl.replace child_tbl p (s :: l)
                | Some _ ->
                  orphans := s :: !orphans;
                  roots := s :: !roots)
             members;
           let visited = Hashtbl.create 16 in
           let rec build s =
             Hashtbl.replace visited s.span_id ();
             let kids =
               match Hashtbl.find_opt child_tbl s.span_id with
               | Some l -> l
               | None -> []
             in
             let kids =
               List.filter (fun k -> not (Hashtbl.mem visited k.span_id)) kids
             in
             List.iter (fun k -> Hashtbl.replace visited k.span_id ()) kids;
             let kids = List.sort by_start kids in
             { span = s; children = List.map build kids }
           in
           let root_spans = List.sort by_start (List.rev !roots) in
           let trees = List.map build root_spans in
           (* anything unreachable from a root sits on a parent cycle:
              promote it to an orphan root so it still shows up *)
           let extra =
             List.filter (fun s -> not (Hashtbl.mem visited s.span_id)) members
           in
           let extra_trees =
             List.filter_map
               (fun s ->
                  if Hashtbl.mem visited s.span_id then None
                  else begin
                    orphans := s :: !orphans;
                    Some (build s)
                  end)
               (List.sort by_start extra)
           in
           {
             id;
             roots = trees @ extra_trees;
             orphans = List.rev !orphans;
             duplicates =
               (match Hashtbl.find_opt dup_counts id with
                | Some n -> n
                | None -> 0);
             span_count = List.length members;
           }
           :: acc)
        groups []
    in
    let start_of tr =
      List.fold_left (fun m node -> min m node.span.start_ns) infinity tr.roots
    in
    List.sort (fun a b -> compare (start_of a) (start_of b)) traces

  let rec tree_spans node = node.span :: List.concat_map tree_spans node.children
  let trace_spans tr = List.concat_map tree_spans tr.roots

  (* --- exporters ------------------------------------------------------- *)

  (* Chrome trace-event JSON (the "JSON Array Format" with metadata),
     loadable in Perfetto / chrome://tracing.  Each node label becomes a
     process (pid) named via a "process_name" metadata event; each trace
     becomes one tid row so concurrent traces don't overlap. *)
  let to_chrome_json (traces : trace list) : string =
    let buf = Buffer.create 4096 in
    Buffer.add_string buf "{\"traceEvents\":[";
    let first = ref true in
    let add_obj s =
      if !first then first := false else Buffer.add_char buf ',';
      Buffer.add_string buf s
    in
    let pids = Hashtbl.create 8 in
    let next_pid = ref 0 in
    let pid_of node =
      match Hashtbl.find_opt pids node with
      | Some p -> p
      | None ->
        incr next_pid;
        Hashtbl.add pids node !next_pid;
        add_obj
          (Printf.sprintf
             "{\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"%s\"}}"
             !next_pid (json_escape node));
        !next_pid
    in
    let emit_span tid (s : span) =
      let pid = pid_of s.node in
      let dur_us = Float.max 0. (s.end_ns -. s.start_ns) /. 1e3 in
      let args =
        List.map
          (fun (k, v) ->
             Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v))
          s.attrs
        @ [
            Printf.sprintf "\"trace_id\":%d" s.trace_id;
            Printf.sprintf "\"span_id\":%d" s.span_id;
          ]
        @ (match s.parent_id with
           | None -> []
           | Some p -> [ Printf.sprintf "\"parent_id\":%d" p ])
      in
      add_obj
        (Printf.sprintf
           "{\"ph\":\"X\",\"pid\":%d,\"tid\":%d,\"name\":\"%s\",\"cat\":\"morph\",\"ts\":%s,\"dur\":%s,\"args\":{%s}}"
           pid tid (json_escape s.name)
           (json_float (s.start_ns /. 1e3))
           (json_float dur_us)
           (String.concat "," args))
    in
    let rec walk tid node =
      emit_span tid node.span;
      List.iter (walk tid) node.children
    in
    List.iteri (fun i tr -> List.iter (walk (i + 1)) tr.roots) traces;
    Buffer.add_string buf "],\"displayTimeUnit\":\"ms\"}";
    Buffer.contents buf

  let to_waterfall (traces : trace list) : string =
    let buf = Buffer.create 4096 in
    List.iter
      (fun tr ->
         let spans = trace_spans tr in
         let t0 =
           List.fold_left (fun m s -> min m s.start_ns) infinity spans
         in
         let t1 =
           List.fold_left (fun m s -> max m s.end_ns) neg_infinity spans
         in
         let extras =
           (if tr.orphans = [] then []
            else [ Printf.sprintf "%d orphaned" (List.length tr.orphans) ])
           @
           if tr.duplicates = 0 then []
           else [ Printf.sprintf "%d duplicate" tr.duplicates ]
         in
         let extras =
           if extras = [] then ""
           else " (" ^ String.concat ", " extras ^ ")"
         in
         Buffer.add_string buf
           (Printf.sprintf "trace %d: %d spans, %.3f ms%s\n" tr.id
              tr.span_count
              ((t1 -. t0) /. 1e6)
              extras);
         Buffer.add_string buf
           (Printf.sprintf "  %10s %10s  %s\n" "start ms" "end ms" "span");
         let rec walk depth node =
           let s = node.span in
           let attrs =
             match s.attrs with
             | [] -> ""
             | l ->
               " ["
               ^ String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ v) l)
               ^ "]"
           in
           Buffer.add_string buf
             (Printf.sprintf "  %10.3f %10.3f  %s%s:%s%s\n"
                ((s.start_ns -. t0) /. 1e6)
                ((s.end_ns -. t0) /. 1e6)
                (String.make (2 * depth) ' ')
                s.node s.name attrs);
           List.iter (walk (depth + 1)) node.children
         in
         List.iter (walk 0) tr.roots)
      traces;
    Buffer.contents buf
end

(* --- flight recorder ---------------------------------------------------- *)

module Flight = struct
  type incident = {
    seq : int;
    kind : string;
    reason : string;
    at_ns : float;
    spans : Trace.span list;
    metrics : string;
  }

  type recorder = {
    fl_reg : t;
    fl_max : int;
    mutable fl_seq : int;
    mutable fl_rev : incident list; (* newest first *)
    mutable fl_suppressed : int;
    fl_c_incidents : Counter.h;
    fl_c_suppressed : Counter.h;
  }

  let create ?(max_incidents = 8) reg =
    if max_incidents < 1 then
      invalid_arg "Obs.Flight.create: max_incidents must be >= 1";
    {
      fl_reg = reg;
      fl_max = max_incidents;
      fl_seq = 0;
      fl_rev = [];
      fl_suppressed = 0;
      fl_c_incidents = Counter.make reg "obs.flight.incidents";
      fl_c_suppressed = Counter.make reg "obs.flight.suppressed";
    }

  let registry r = r.fl_reg

  (* Freeze the registry's current trace ring and metric values.  The
     buffer is bounded: once [max_incidents] incidents are held, further
     triggers only count as suppressed — an anomaly storm cannot grow
     memory without bound or turn the trigger path into a hot loop. *)
  let trigger r ~kind ~reason =
    if r.fl_reg.on then begin
      if List.length r.fl_rev >= r.fl_max then begin
        r.fl_suppressed <- r.fl_suppressed + 1;
        Counter.incr r.fl_c_suppressed
      end
      else begin
        r.fl_seq <- r.fl_seq + 1;
        Counter.incr r.fl_c_incidents;
        r.fl_rev <-
          {
            seq = r.fl_seq;
            kind;
            reason;
            at_ns = now r.fl_reg;
            spans = Trace.spans r.fl_reg;
            metrics = to_json_lines r.fl_reg;
          }
          :: r.fl_rev
      end
    end

  let incidents r = List.rev r.fl_rev
  let count r = List.length r.fl_rev
  let suppressed r = r.fl_suppressed

  let clear r =
    r.fl_rev <- [];
    r.fl_suppressed <- 0

  let to_chrome_json inc = Trace.to_chrome_json (Trace.assemble inc.spans)

  let report inc =
    let buf = Buffer.create 1024 in
    Buffer.add_string buf
      (Printf.sprintf "incident #%d kind=%s t=%.6fs\n" inc.seq inc.kind
         (inc.at_ns /. 1e9));
    Buffer.add_string buf (Printf.sprintf "reason: %s\n" inc.reason);
    Buffer.add_string buf
      (Printf.sprintf "spans captured: %d\n" (List.length inc.spans));
    Buffer.add_string buf "--- metrics at trigger ---\n";
    Buffer.add_string buf inc.metrics;
    if inc.spans <> [] then begin
      Buffer.add_string buf "--- trace waterfall ---\n";
      Buffer.add_string buf (Trace.to_waterfall (Trace.assemble inc.spans))
    end;
    Buffer.contents buf
end
