(* Metric registry with handle-based recording.

   The design constraint is the null path: PR acceptance requires the
   instrumented hot loops (wire codec, receiver cache) to regress < 2 %
   when observability is off.  So components never look metrics up by
   name per event; they mint handles once and every handle carries its
   own [on] flag.  The disabled registry hands out shared inert handles
   backed by dummy cells, making each disabled record one load, one
   branch. *)

(* Clocks are per registry so independent registries (one per simulated
   node, or one per test, or one per domain) cannot leak virtual time
   into each other.  There is deliberately no process-wide override: a
   registry belongs to one domain, and ambient mutable state would make
   that ownership rule unenforceable. *)
let default_clock () = Unix.gettimeofday () *. 1e9

type counter_cell = { mutable n : int }
type gauge_cell = { mutable g : float; mutable gset : bool }

type hist_cell = {
  bounds : float array; (* ascending upper bounds, excluding +inf *)
  hcounts : int array; (* length bounds + 1; last is the +inf bucket *)
  mutable hcount : int;
  mutable hsum : float;
  mutable hmin : float;
  mutable hmax : float;
}

type data =
  | Dcounter of counter_cell
  | Dgauge of gauge_cell
  | Dhist of hist_cell

type entry = { ename : string; eunit : string option; data : data }

(* A finished (or still-open) trace span instance.  [sp_parent] is 0 for a
   root; [sp_attrs] is kept newest-first and reversed on export. *)
type tr_span = {
  sp_trace : int;
  sp_id : int;
  sp_parent : int;
  sp_name : string;
  sp_node : string;
  sp_start : float;
  mutable sp_end : float;
  mutable sp_attrs : (string * string) list;
}

type t = {
  on : bool;
  label : string;
  mutable clock : unit -> float;
  tbl : (string, entry) Hashtbl.t;
  mutable rev_order : entry list;
  mutable spans : string list; (* innermost first *)
  (* trace ring buffer: [tr_head] indexes the oldest stored span,
     [tr_len] counts stored spans, writes go to (head + len) mod cap *)
  mutable tr_cap : int;
  mutable tr_buf : tr_span array;
  mutable tr_head : int;
  mutable tr_len : int;
  mutable tr_dropped : int;
  mutable tr_stack : tr_span list; (* open trace spans, innermost first *)
}

let default_trace_capacity = 4096

let create ?(label = "main") () =
  {
    on = true;
    label;
    clock = default_clock;
    tbl = Hashtbl.create 64;
    rev_order = [];
    spans = [];
    tr_cap = default_trace_capacity;
    tr_buf = [||];
    tr_head = 0;
    tr_len = 0;
    tr_dropped = 0;
    tr_stack = [];
  }

let null =
  {
    on = false;
    label = "null";
    clock = default_clock;
    tbl = Hashtbl.create 1;
    rev_order = [];
    spans = [];
    tr_cap = 0;
    tr_buf = [||];
    tr_head = 0;
    tr_len = 0;
    tr_dropped = 0;
    tr_stack = [];
  }

let enabled t = t.on
let label t = t.label
let set_registry_clock t f = if t.on then t.clock <- f

let now t = t.clock ()

let default_latency_buckets = [ 1e2; 1e3; 1e4; 1e5; 1e6; 1e7; 1e8; 1e9 ]
let ratio_buckets = [ 0.0; 0.05; 0.1; 0.2; 0.3; 0.5; 0.75; 1.0 ]

let kind_name = function
  | Dcounter _ -> "counter"
  | Dgauge _ -> "gauge"
  | Dhist _ -> "histogram"

let same_kind a b =
  match (a, b) with
  | Dcounter _, Dcounter _ | Dgauge _, Dgauge _ | Dhist _, Dhist _ -> true
  | _ -> false

(* Get the entry for [name], creating it with [fresh ()] on first use.
   Re-attaching to an existing name of the same kind returns the
   existing cell, so two components sharing a registry aggregate into
   one metric; a kind clash is a programming error. *)
let intern t name unit_ fresh =
  match Hashtbl.find_opt t.tbl name with
  | Some e ->
    if not (same_kind e.data (fresh ())) then
      invalid_arg
        (Printf.sprintf "Obs: metric %S already registered as a %s" name
           (kind_name e.data));
    e
  | None ->
    let e = { ename = name; eunit = unit_; data = fresh () } in
    Hashtbl.add t.tbl name e;
    t.rev_order <- e :: t.rev_order;
    e

let reset (t : t) =
  List.iter
    (fun e ->
       match e.data with
       | Dcounter c -> c.n <- 0
       | Dgauge g ->
         g.g <- 0.;
         g.gset <- false
       | Dhist h ->
         Array.fill h.hcounts 0 (Array.length h.hcounts) 0;
         h.hcount <- 0;
         h.hsum <- 0.;
         h.hmin <- infinity;
         h.hmax <- neg_infinity)
    t.rev_order;
  t.spans <- [];
  t.tr_buf <- [||];
  t.tr_head <- 0;
  t.tr_len <- 0;
  t.tr_dropped <- 0;
  t.tr_stack <- []

(* Scrape-time aggregation across per-domain (or per-shard) registries.
   Counters add, gauges take the source value when it was ever set,
   histograms add bucket-wise when the bounds agree.  Entries missing
   from [into] are created on first merge, so merging N registries into
   a fresh one yields the union in [src] registration order. *)
let merge_into ~(into : t) (src : t) =
  if into.on then
    List.iter
      (fun (se : entry) ->
         match se.data with
         | Dcounter sc ->
           let e = intern into se.ename se.eunit (fun () -> Dcounter { n = 0 }) in
           (match e.data with
            | Dcounter c -> c.n <- c.n + sc.n
            | _ -> assert false)
         | Dgauge sg ->
           let e =
             intern into se.ename se.eunit (fun () ->
                 Dgauge { g = 0.; gset = false })
           in
           (match e.data with
            | Dgauge g ->
              if sg.gset then begin
                g.g <- sg.g;
                g.gset <- true
              end
            | _ -> assert false)
         | Dhist sh ->
           let e =
             intern into se.ename se.eunit (fun () ->
                 Dhist
                   {
                     bounds = Array.copy sh.bounds;
                     hcounts = Array.make (Array.length sh.hcounts) 0;
                     hcount = 0;
                     hsum = 0.;
                     hmin = infinity;
                     hmax = neg_infinity;
                   })
           in
           (match e.data with
            | Dhist h when h.bounds = sh.bounds ->
              Array.iteri (fun i n -> h.hcounts.(i) <- h.hcounts.(i) + n)
                sh.hcounts;
              h.hcount <- h.hcount + sh.hcount;
              h.hsum <- h.hsum +. sh.hsum;
              if sh.hcount > 0 then begin
                if sh.hmin < h.hmin then h.hmin <- sh.hmin;
                if sh.hmax > h.hmax then h.hmax <- sh.hmax
              end
            | Dhist _ ->
              invalid_arg
                (Printf.sprintf
                   "Obs.merge_into: histogram %S has different buckets"
                   se.ename)
            | _ -> assert false))
      (List.rev src.rev_order)

let merged ?label srcs =
  let into = create ?label () in
  List.iter (fun src -> merge_into ~into src) srcs;
  into

(* Span and trace ids come from one process-wide counter so spans from
   different registries (one per simulated node, possibly on different
   domains) can be merged without collisions.  0 is reserved for "no
   parent"; the counter is atomic so ids stay unique across domains. *)
let id_counter = Atomic.make 0
let next_id () = Atomic.fetch_and_add id_counter 1 + 1

type trace_ctx = { trace_id : int; span_id : int }

let tr_push t sp =
  if t.tr_cap > 0 then begin
    if Array.length t.tr_buf = 0 then t.tr_buf <- Array.make t.tr_cap sp;
    if t.tr_len = t.tr_cap then begin
      t.tr_buf.(t.tr_head) <- sp;
      t.tr_head <- (t.tr_head + 1) mod t.tr_cap;
      t.tr_dropped <- t.tr_dropped + 1
    end
    else begin
      t.tr_buf.((t.tr_head + t.tr_len) mod t.tr_cap) <- sp;
      t.tr_len <- t.tr_len + 1
    end
  end

let open_trace_span ?ctx t name t0 =
  let parent, trace =
    match ctx with
    | Some c -> (c.span_id, c.trace_id)
    | None -> (
      match t.tr_stack with
      | sp :: _ -> (sp.sp_id, sp.sp_trace)
      | [] -> (0, next_id ()))
  in
  let sp =
    {
      sp_trace = trace;
      sp_id = next_id ();
      sp_parent = parent;
      sp_name = name;
      sp_node = t.label;
      sp_start = t0;
      sp_end = t0;
      sp_attrs = [];
    }
  in
  t.tr_stack <- sp :: t.tr_stack;
  sp

let close_trace_span t sp t1 =
  sp.sp_end <- t1;
  (match t.tr_stack with [] -> () | _ :: rest -> t.tr_stack <- rest);
  tr_push t sp

module Counter = struct
  type h = { on : bool; cell : counter_cell }

  let inert = { on = false; cell = { n = 0 } }

  let make (t : t) ?unit_ name =
    if not t.on then inert
    else
      let e = intern t name unit_ (fun () -> Dcounter { n = 0 }) in
      (match e.data with
       | Dcounter c -> { on = true; cell = c }
       | _ -> assert false)

  let incr h = if h.on then h.cell.n <- h.cell.n + 1
  let add h k = if h.on then h.cell.n <- h.cell.n + k

  let value (t : t) name =
    match Hashtbl.find_opt t.tbl name with
    | Some { data = Dcounter c; _ } -> c.n
    | _ -> 0
end

module Gauge = struct
  type h = { on : bool; cell : gauge_cell }

  let inert = { on = false; cell = { g = 0.; gset = false } }

  let make (t : t) ?unit_ name =
    if not t.on then inert
    else
      let e = intern t name unit_ (fun () -> Dgauge { g = 0.; gset = false }) in
      (match e.data with
       | Dgauge g -> { on = true; cell = g }
       | _ -> assert false)

  let set h v =
    if h.on then begin
      h.cell.g <- v;
      h.cell.gset <- true
    end

  let value (t : t) name =
    match Hashtbl.find_opt t.tbl name with
    | Some { data = Dgauge g; _ } when g.gset -> Some g.g
    | _ -> None
end

module Histogram = struct
  type h = { on : bool; cell : hist_cell }

  type snapshot = {
    count : int;
    sum : float;
    min : float;
    max : float;
    buckets : (float * int) list;
  }

  let fresh_cell buckets =
    let bounds = Array.of_list buckets in
    Array.iteri
      (fun i b ->
         if i > 0 && b <= bounds.(i - 1) then
           invalid_arg "Obs.Histogram.make: buckets must be strictly ascending")
      bounds;
    {
      bounds;
      hcounts = Array.make (Array.length bounds + 1) 0;
      hcount = 0;
      hsum = 0.;
      hmin = infinity;
      hmax = neg_infinity;
    }

  let inert = { on = false; cell = fresh_cell [] }

  let make (t : t) ?unit_ ?(buckets = default_latency_buckets) name =
    if not t.on then inert
    else
      let e = intern t name unit_ (fun () -> Dhist (fresh_cell buckets)) in
      (match e.data with
       | Dhist c -> { on = true; cell = c }
       | _ -> assert false)

  let observe h v =
    if h.on then begin
      let c = h.cell in
      let n = Array.length c.bounds in
      let i = ref 0 in
      while !i < n && v > c.bounds.(!i) do
        incr i
      done;
      c.hcounts.(!i) <- c.hcounts.(!i) + 1;
      c.hcount <- c.hcount + 1;
      c.hsum <- c.hsum +. v;
      if v < c.hmin then c.hmin <- v;
      if v > c.hmax then c.hmax <- v
    end

  let snapshot_cell c =
    let buckets =
      Array.to_list
        (Array.mapi
           (fun i n ->
              let le =
                if i < Array.length c.bounds then c.bounds.(i) else infinity
              in
              (le, n))
           c.hcounts)
    in
    {
      count = c.hcount;
      sum = c.hsum;
      min = (if c.hcount = 0 then 0. else c.hmin);
      max = (if c.hcount = 0 then 0. else c.hmax);
      buckets;
    }

  let snapshot (t : t) name =
    match Hashtbl.find_opt t.tbl name with
    | Some { data = Dhist c; _ } -> Some (snapshot_cell c)
    | _ -> None

  let count (t : t) name =
    match snapshot t name with Some s -> s.count | None -> 0

  let sum (t : t) name = match snapshot t name with Some s -> s.sum | None -> 0.

  (* Conservative bucket-based estimate: the upper bound of the bucket
     holding the rank-[ceil (q * count)] observation, clamped to the
     observed extrema so q=0 and q=1 stay meaningful.  Samples landing in
     the implicit +inf bucket report [s.max]. *)
  let quantile (s : snapshot) (q : float) : float =
    if s.count = 0 then 0.
    else begin
      (* every q maps to a defined rank: NaN and q <= 0 to the lowest
         sample, q >= 1 to the highest; a single-sample snapshot has
         min = max, so the clamp below returns that sample exactly *)
      let q = if not (q >= 0.) then 0. else if q > 1. then 1. else q in
      let rank =
        let r = int_of_float (ceil (q *. float_of_int s.count)) in
        if r < 1 then 1 else r
      in
      let rec walk cum = function
        | [] -> s.max
        | (le, n) :: rest ->
          let cum = cum + n in
          if cum >= rank then
            if le = infinity then s.max
            else if le > s.max then s.max
            else if le < s.min then s.min
            else le
          else walk cum rest
      in
      walk 0 s.buckets
    end
end

let with_span (t : t) name f =
  if not t.on then f ()
  else begin
    t.spans <- name :: t.spans;
    let path = String.concat "/" (List.rev t.spans) in
    let h = Histogram.make t ~unit_:"ns" ("span:" ^ path) in
    let t0 = now t in
    let sp = open_trace_span t name t0 in
    Fun.protect
      ~finally:(fun () ->
        let t1 = now t in
        Histogram.observe h (t1 -. t0);
        close_trace_span t sp t1;
        match t.spans with [] -> () | _ :: rest -> t.spans <- rest)
      f
  end

(* --- rendering --------------------------------------------------------- *)

let names (t : t) = List.rev_map (fun e -> e.ename) t.rev_order

let entries (t : t) = List.rev t.rev_order

let fmt_float f =
  if Float.is_nan f || f = infinity || f = neg_infinity then "0"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.3f" f

let fmt_bound le = if le = infinity then "+inf" else Printf.sprintf "%g" le

let render_table t =
  let buf = Buffer.create 1024 in
  let es = entries t in
  let width =
    List.fold_left (fun w e -> max w (String.length e.ename)) 6 es
  in
  Buffer.add_string buf
    (Printf.sprintf "%-*s  %-9s  %s\n" width "metric" "kind" "value");
  Buffer.add_string buf
    (Printf.sprintf "%-*s  %-9s  %s\n" width "------" "----" "-----");
  List.iter
    (fun e ->
       let unit_suffix =
         match e.eunit with None -> "" | Some u -> " " ^ u
       in
       match e.data with
       | Dcounter c ->
         Buffer.add_string buf
           (Printf.sprintf "%-*s  %-9s  %d%s\n" width e.ename "counter" c.n
              unit_suffix)
       | Dgauge g ->
         let v = if g.gset then fmt_float g.g else "-" in
         Buffer.add_string buf
           (Printf.sprintf "%-*s  %-9s  %s%s\n" width e.ename "gauge" v
              unit_suffix)
       | Dhist c ->
         let s = Histogram.snapshot_cell c in
         let mean = if s.count = 0 then 0. else s.sum /. float_of_int s.count in
         Buffer.add_string buf
           (Printf.sprintf
              "%-*s  %-9s  count=%d mean=%s min=%s max=%s%s\n" width e.ename
              "histogram" s.count (fmt_float mean) (fmt_float s.min)
              (fmt_float s.max) unit_suffix);
         if s.count > 0 then begin
           Buffer.add_string buf (Printf.sprintf "%-*s    " width "");
           Buffer.add_string buf
             (String.concat "  "
                (List.filter_map
                   (fun (le, n) ->
                      if n = 0 then None
                      else Some (Printf.sprintf "le %s: %d" (fmt_bound le) n))
                   s.buckets));
           Buffer.add_char buf '\n'
         end)
    es;
  Buffer.contents buf

(* JSON helpers: numbers must be finite, strings escaped. *)

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun ch ->
       match ch with
       | '"' -> Buffer.add_string buf "\\\""
       | '\\' -> Buffer.add_string buf "\\\\"
       | '\n' -> Buffer.add_string buf "\\n"
       | '\r' -> Buffer.add_string buf "\\r"
       | '\t' -> Buffer.add_string buf "\\t"
       | c when Char.code c < 0x20 ->
         Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_float f =
  if Float.is_nan f || f = infinity || f = neg_infinity then "0"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let to_json_lines t =
  let buf = Buffer.create 1024 in
  List.iter
    (fun e ->
       let unit_ = match e.eunit with None -> "" | Some u -> u in
       let head =
         Printf.sprintf "{\"metric\":\"%s\",\"kind\":\"%s\",\"unit\":\"%s\""
           (json_escape e.ename) (kind_name e.data) (json_escape unit_)
       in
       Buffer.add_string buf head;
       (match e.data with
        | Dcounter c -> Buffer.add_string buf (Printf.sprintf ",\"value\":%d" c.n)
        | Dgauge g ->
          Buffer.add_string buf
            (Printf.sprintf ",\"value\":%s" (json_float (if g.gset then g.g else 0.)))
        | Dhist c ->
          let s = Histogram.snapshot_cell c in
          Buffer.add_string buf
            (Printf.sprintf ",\"count\":%d,\"sum\":%s,\"min\":%s,\"max\":%s"
               s.count (json_float s.sum) (json_float s.min) (json_float s.max));
          Buffer.add_string buf ",\"buckets\":[";
          Buffer.add_string buf
            (String.concat ","
               (List.map
                  (fun (le, n) ->
                     let le_json =
                       if le = infinity then "\"+inf\"" else json_float le
                     in
                     Printf.sprintf "{\"le\":%s,\"n\":%d}" le_json n)
                  s.buckets));
          Buffer.add_char buf ']');
       Buffer.add_string buf "}\n")
    (entries t);
  Buffer.contents buf

type sink = Null | Text of (string -> unit) | Json of (string -> unit)

let emit t = function
  | Null -> ()
  | Text k -> k (render_table t)
  | Json k -> k (to_json_lines t)

(* --- distributed tracing ----------------------------------------------- *)

module Trace = struct
  type ctx = trace_ctx = { trace_id : int; span_id : int }

  type span = {
    trace_id : int;
    span_id : int;
    parent_id : int option;
    name : string;
    node : string;
    start_ns : float;
    end_ns : float;
    attrs : (string * string) list;
  }

  let set_capacity t n =
    if t.on then begin
      if n < 0 then invalid_arg "Obs.Trace.set_capacity: negative capacity";
      t.tr_cap <- n;
      t.tr_buf <- [||];
      t.tr_head <- 0;
      t.tr_len <- 0;
      t.tr_dropped <- 0
    end

  let capacity t = t.tr_cap
  let dropped t = t.tr_dropped

  let clear t =
    t.tr_buf <- [||];
    t.tr_head <- 0;
    t.tr_len <- 0;
    t.tr_dropped <- 0;
    t.tr_stack <- []

  let current t =
    match t.tr_stack with
    | sp :: _ -> Some { trace_id = sp.sp_trace; span_id = sp.sp_id }
    | [] -> None

  let add_attr t k v =
    match t.tr_stack with
    | sp :: _ -> sp.sp_attrs <- (k, v) :: sp.sp_attrs
    | [] -> ()

  let export sp =
    {
      trace_id = sp.sp_trace;
      span_id = sp.sp_id;
      parent_id = (if sp.sp_parent = 0 then None else Some sp.sp_parent);
      name = sp.sp_name;
      node = sp.sp_node;
      start_ns = sp.sp_start;
      end_ns = sp.sp_end;
      attrs = List.rev sp.sp_attrs;
    }

  let spans t =
    List.init t.tr_len (fun i -> export t.tr_buf.((t.tr_head + i) mod t.tr_cap))

  let with_span ?ctx ?(attrs = []) t name f =
    if not t.on then f ()
    else begin
      let t0 = now t in
      let sp = open_trace_span ?ctx t name t0 in
      sp.sp_attrs <- List.rev attrs;
      Fun.protect ~finally:(fun () -> close_trace_span t sp (now t)) f
    end

  let record ?ctx ?(attrs = []) t name ~start_ns ~end_ns =
    if t.on then begin
      let parent, trace =
        match ctx with
        | Some (c : ctx) -> (c.span_id, c.trace_id)
        | None -> (
          match t.tr_stack with
          | sp :: _ -> (sp.sp_id, sp.sp_trace)
          | [] -> (0, next_id ()))
      in
      tr_push t
        {
          sp_trace = trace;
          sp_id = next_id ();
          sp_parent = parent;
          sp_name = name;
          sp_node = t.label;
          sp_start = start_ns;
          sp_end = end_ns;
          sp_attrs = List.rev attrs;
        }
    end

  (* --- assembly -------------------------------------------------------- *)

  type tree = { span : span; children : tree list }

  type trace = {
    id : int;
    roots : tree list;
    orphans : span list;
    duplicates : int;
    span_count : int;
  }

  let by_start a b = compare a.start_ns b.start_ns

  (* Merge span dumps from any number of registries into per-trace trees.
     Assembly is deliberately forgiving: duplicate span ids (frame
     duplication) are counted and dropped, spans whose parent is missing
     (ring overflow, lost frame) become roots and are reported as
     orphans, and parent cycles are broken rather than looping. *)
  let assemble (all : span list) : trace list =
    let seen = Hashtbl.create 64 in
    let dup_counts = Hashtbl.create 8 in
    let uniq =
      List.filter
        (fun s ->
           if Hashtbl.mem seen s.span_id then begin
             Hashtbl.replace dup_counts s.trace_id
               (1
                +
                match Hashtbl.find_opt dup_counts s.trace_id with
                | Some n -> n
                | None -> 0);
             false
           end
           else begin
             Hashtbl.add seen s.span_id ();
             true
           end)
        all
    in
    let groups = Hashtbl.create 16 in
    List.iter
      (fun s ->
         let l =
           match Hashtbl.find_opt groups s.trace_id with
           | Some l -> l
           | None -> []
         in
         Hashtbl.replace groups s.trace_id (s :: l))
      uniq;
    let traces =
      Hashtbl.fold
        (fun id rev_members acc ->
           let members = List.rev rev_members in
           let by_id = Hashtbl.create 16 in
           List.iter (fun s -> Hashtbl.replace by_id s.span_id s) members;
           let child_tbl = Hashtbl.create 16 in
           let roots = ref [] in
           let orphans = ref [] in
           List.iter
             (fun s ->
                match s.parent_id with
                | None -> roots := s :: !roots
                | Some p when Hashtbl.mem by_id p ->
                  let l =
                    match Hashtbl.find_opt child_tbl p with
                    | Some l -> l
                    | None -> []
                  in
                  Hashtbl.replace child_tbl p (s :: l)
                | Some _ ->
                  orphans := s :: !orphans;
                  roots := s :: !roots)
             members;
           let visited = Hashtbl.create 16 in
           let rec build s =
             Hashtbl.replace visited s.span_id ();
             let kids =
               match Hashtbl.find_opt child_tbl s.span_id with
               | Some l -> l
               | None -> []
             in
             let kids =
               List.filter (fun k -> not (Hashtbl.mem visited k.span_id)) kids
             in
             List.iter (fun k -> Hashtbl.replace visited k.span_id ()) kids;
             let kids = List.sort by_start kids in
             { span = s; children = List.map build kids }
           in
           let root_spans = List.sort by_start (List.rev !roots) in
           let trees = List.map build root_spans in
           (* anything unreachable from a root sits on a parent cycle:
              promote it to an orphan root so it still shows up *)
           let extra =
             List.filter (fun s -> not (Hashtbl.mem visited s.span_id)) members
           in
           let extra_trees =
             List.filter_map
               (fun s ->
                  if Hashtbl.mem visited s.span_id then None
                  else begin
                    orphans := s :: !orphans;
                    Some (build s)
                  end)
               (List.sort by_start extra)
           in
           {
             id;
             roots = trees @ extra_trees;
             orphans = List.rev !orphans;
             duplicates =
               (match Hashtbl.find_opt dup_counts id with
                | Some n -> n
                | None -> 0);
             span_count = List.length members;
           }
           :: acc)
        groups []
    in
    let start_of tr =
      List.fold_left (fun m node -> min m node.span.start_ns) infinity tr.roots
    in
    List.sort (fun a b -> compare (start_of a) (start_of b)) traces

  let rec tree_spans node = node.span :: List.concat_map tree_spans node.children
  let trace_spans tr = List.concat_map tree_spans tr.roots

  (* --- exporters ------------------------------------------------------- *)

  (* Chrome trace-event JSON (the "JSON Array Format" with metadata),
     loadable in Perfetto / chrome://tracing.  Each node label becomes a
     process (pid) named via a "process_name" metadata event; each trace
     becomes one tid row so concurrent traces don't overlap. *)
  let to_chrome_json (traces : trace list) : string =
    let buf = Buffer.create 4096 in
    Buffer.add_string buf "{\"traceEvents\":[";
    let first = ref true in
    let add_obj s =
      if !first then first := false else Buffer.add_char buf ',';
      Buffer.add_string buf s
    in
    let pids = Hashtbl.create 8 in
    let next_pid = ref 0 in
    let pid_of node =
      match Hashtbl.find_opt pids node with
      | Some p -> p
      | None ->
        incr next_pid;
        Hashtbl.add pids node !next_pid;
        add_obj
          (Printf.sprintf
             "{\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"%s\"}}"
             !next_pid (json_escape node));
        !next_pid
    in
    let emit_span tid (s : span) =
      let pid = pid_of s.node in
      let dur_us = Float.max 0. (s.end_ns -. s.start_ns) /. 1e3 in
      let args =
        List.map
          (fun (k, v) ->
             Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v))
          s.attrs
        @ [
            Printf.sprintf "\"trace_id\":%d" s.trace_id;
            Printf.sprintf "\"span_id\":%d" s.span_id;
          ]
        @ (match s.parent_id with
           | None -> []
           | Some p -> [ Printf.sprintf "\"parent_id\":%d" p ])
      in
      add_obj
        (Printf.sprintf
           "{\"ph\":\"X\",\"pid\":%d,\"tid\":%d,\"name\":\"%s\",\"cat\":\"morph\",\"ts\":%s,\"dur\":%s,\"args\":{%s}}"
           pid tid (json_escape s.name)
           (json_float (s.start_ns /. 1e3))
           (json_float dur_us)
           (String.concat "," args))
    in
    let rec walk tid node =
      emit_span tid node.span;
      List.iter (walk tid) node.children
    in
    List.iteri (fun i tr -> List.iter (walk (i + 1)) tr.roots) traces;
    Buffer.add_string buf "],\"displayTimeUnit\":\"ms\"}";
    Buffer.contents buf

  let to_waterfall (traces : trace list) : string =
    let buf = Buffer.create 4096 in
    List.iter
      (fun tr ->
         let spans = trace_spans tr in
         let t0 =
           List.fold_left (fun m s -> min m s.start_ns) infinity spans
         in
         let t1 =
           List.fold_left (fun m s -> max m s.end_ns) neg_infinity spans
         in
         let extras =
           (if tr.orphans = [] then []
            else [ Printf.sprintf "%d orphaned" (List.length tr.orphans) ])
           @
           if tr.duplicates = 0 then []
           else [ Printf.sprintf "%d duplicate" tr.duplicates ]
         in
         let extras =
           if extras = [] then ""
           else " (" ^ String.concat ", " extras ^ ")"
         in
         Buffer.add_string buf
           (Printf.sprintf "trace %d: %d spans, %.3f ms%s\n" tr.id
              tr.span_count
              ((t1 -. t0) /. 1e6)
              extras);
         Buffer.add_string buf
           (Printf.sprintf "  %10s %10s  %s\n" "start ms" "end ms" "span");
         let rec walk depth node =
           let s = node.span in
           let attrs =
             match s.attrs with
             | [] -> ""
             | l ->
               " ["
               ^ String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ v) l)
               ^ "]"
           in
           Buffer.add_string buf
             (Printf.sprintf "  %10.3f %10.3f  %s%s:%s%s\n"
                ((s.start_ns -. t0) /. 1e6)
                ((s.end_ns -. t0) /. 1e6)
                (String.make (2 * depth) ' ')
                s.node s.name attrs);
           List.iter (walk (depth + 1)) node.children
         in
         List.iter (walk 0) tr.roots)
      traces;
    Buffer.contents buf
end
