(* Metric registry with handle-based recording.

   The design constraint is the null path: PR acceptance requires the
   instrumented hot loops (wire codec, receiver cache) to regress < 2 %
   when observability is off.  So components never look metrics up by
   name per event; they mint handles once and every handle carries its
   own [on] flag.  The disabled registry hands out shared inert handles
   backed by dummy cells, making each disabled record one load, one
   branch. *)

let clock = ref (fun () -> Unix.gettimeofday () *. 1e9)
let set_clock f = clock := f
let now_ns () = !clock ()

type counter_cell = { mutable n : int }
type gauge_cell = { mutable g : float; mutable gset : bool }

type hist_cell = {
  bounds : float array; (* ascending upper bounds, excluding +inf *)
  hcounts : int array; (* length bounds + 1; last is the +inf bucket *)
  mutable hcount : int;
  mutable hsum : float;
  mutable hmin : float;
  mutable hmax : float;
}

type data =
  | Dcounter of counter_cell
  | Dgauge of gauge_cell
  | Dhist of hist_cell

type entry = { ename : string; eunit : string option; data : data }

type t = {
  on : bool;
  tbl : (string, entry) Hashtbl.t;
  mutable rev_order : entry list;
  mutable spans : string list; (* innermost first *)
}

let create () = { on = true; tbl = Hashtbl.create 64; rev_order = []; spans = [] }
let null = { on = false; tbl = Hashtbl.create 1; rev_order = []; spans = [] }
let enabled t = t.on

let default_latency_buckets = [ 1e2; 1e3; 1e4; 1e5; 1e6; 1e7; 1e8; 1e9 ]
let ratio_buckets = [ 0.0; 0.05; 0.1; 0.2; 0.3; 0.5; 0.75; 1.0 ]

let kind_name = function
  | Dcounter _ -> "counter"
  | Dgauge _ -> "gauge"
  | Dhist _ -> "histogram"

let same_kind a b =
  match (a, b) with
  | Dcounter _, Dcounter _ | Dgauge _, Dgauge _ | Dhist _, Dhist _ -> true
  | _ -> false

(* Get the entry for [name], creating it with [fresh ()] on first use.
   Re-attaching to an existing name of the same kind returns the
   existing cell, so two components sharing a registry aggregate into
   one metric; a kind clash is a programming error. *)
let intern t name unit_ fresh =
  match Hashtbl.find_opt t.tbl name with
  | Some e ->
    if not (same_kind e.data (fresh ())) then
      invalid_arg
        (Printf.sprintf "Obs: metric %S already registered as a %s" name
           (kind_name e.data));
    e
  | None ->
    let e = { ename = name; eunit = unit_; data = fresh () } in
    Hashtbl.add t.tbl name e;
    t.rev_order <- e :: t.rev_order;
    e

let reset (t : t) =
  List.iter
    (fun e ->
       match e.data with
       | Dcounter c -> c.n <- 0
       | Dgauge g ->
         g.g <- 0.;
         g.gset <- false
       | Dhist h ->
         Array.fill h.hcounts 0 (Array.length h.hcounts) 0;
         h.hcount <- 0;
         h.hsum <- 0.;
         h.hmin <- infinity;
         h.hmax <- neg_infinity)
    t.rev_order;
  t.spans <- []

module Counter = struct
  type h = { on : bool; cell : counter_cell }

  let inert = { on = false; cell = { n = 0 } }

  let make (t : t) ?unit_ name =
    if not t.on then inert
    else
      let e = intern t name unit_ (fun () -> Dcounter { n = 0 }) in
      (match e.data with
       | Dcounter c -> { on = true; cell = c }
       | _ -> assert false)

  let incr h = if h.on then h.cell.n <- h.cell.n + 1
  let add h k = if h.on then h.cell.n <- h.cell.n + k

  let value (t : t) name =
    match Hashtbl.find_opt t.tbl name with
    | Some { data = Dcounter c; _ } -> c.n
    | _ -> 0
end

module Gauge = struct
  type h = { on : bool; cell : gauge_cell }

  let inert = { on = false; cell = { g = 0.; gset = false } }

  let make (t : t) ?unit_ name =
    if not t.on then inert
    else
      let e = intern t name unit_ (fun () -> Dgauge { g = 0.; gset = false }) in
      (match e.data with
       | Dgauge g -> { on = true; cell = g }
       | _ -> assert false)

  let set h v =
    if h.on then begin
      h.cell.g <- v;
      h.cell.gset <- true
    end

  let value (t : t) name =
    match Hashtbl.find_opt t.tbl name with
    | Some { data = Dgauge g; _ } when g.gset -> Some g.g
    | _ -> None
end

module Histogram = struct
  type h = { on : bool; cell : hist_cell }

  type snapshot = {
    count : int;
    sum : float;
    min : float;
    max : float;
    buckets : (float * int) list;
  }

  let fresh_cell buckets =
    let bounds = Array.of_list buckets in
    Array.iteri
      (fun i b ->
         if i > 0 && b <= bounds.(i - 1) then
           invalid_arg "Obs.Histogram.make: buckets must be strictly ascending")
      bounds;
    {
      bounds;
      hcounts = Array.make (Array.length bounds + 1) 0;
      hcount = 0;
      hsum = 0.;
      hmin = infinity;
      hmax = neg_infinity;
    }

  let inert = { on = false; cell = fresh_cell [] }

  let make (t : t) ?unit_ ?(buckets = default_latency_buckets) name =
    if not t.on then inert
    else
      let e = intern t name unit_ (fun () -> Dhist (fresh_cell buckets)) in
      (match e.data with
       | Dhist c -> { on = true; cell = c }
       | _ -> assert false)

  let observe h v =
    if h.on then begin
      let c = h.cell in
      let n = Array.length c.bounds in
      let i = ref 0 in
      while !i < n && v > c.bounds.(!i) do
        incr i
      done;
      c.hcounts.(!i) <- c.hcounts.(!i) + 1;
      c.hcount <- c.hcount + 1;
      c.hsum <- c.hsum +. v;
      if v < c.hmin then c.hmin <- v;
      if v > c.hmax then c.hmax <- v
    end

  let snapshot_cell c =
    let buckets =
      Array.to_list
        (Array.mapi
           (fun i n ->
              let le =
                if i < Array.length c.bounds then c.bounds.(i) else infinity
              in
              (le, n))
           c.hcounts)
    in
    {
      count = c.hcount;
      sum = c.hsum;
      min = (if c.hcount = 0 then 0. else c.hmin);
      max = (if c.hcount = 0 then 0. else c.hmax);
      buckets;
    }

  let snapshot (t : t) name =
    match Hashtbl.find_opt t.tbl name with
    | Some { data = Dhist c; _ } -> Some (snapshot_cell c)
    | _ -> None

  let count (t : t) name =
    match snapshot t name with Some s -> s.count | None -> 0

  let sum (t : t) name = match snapshot t name with Some s -> s.sum | None -> 0.
end

let with_span (t : t) name f =
  if not t.on then f ()
  else begin
    t.spans <- name :: t.spans;
    let path = String.concat "/" (List.rev t.spans) in
    let h = Histogram.make t ~unit_:"ns" ("span:" ^ path) in
    let t0 = now_ns () in
    Fun.protect
      ~finally:(fun () ->
        Histogram.observe h (now_ns () -. t0);
        match t.spans with [] -> () | _ :: rest -> t.spans <- rest)
      f
  end

(* --- rendering --------------------------------------------------------- *)

let names (t : t) = List.rev_map (fun e -> e.ename) t.rev_order

let entries (t : t) = List.rev t.rev_order

let fmt_float f =
  if Float.is_nan f || f = infinity || f = neg_infinity then "0"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.3f" f

let fmt_bound le = if le = infinity then "+inf" else Printf.sprintf "%g" le

let render_table t =
  let buf = Buffer.create 1024 in
  let es = entries t in
  let width =
    List.fold_left (fun w e -> max w (String.length e.ename)) 6 es
  in
  Buffer.add_string buf
    (Printf.sprintf "%-*s  %-9s  %s\n" width "metric" "kind" "value");
  Buffer.add_string buf
    (Printf.sprintf "%-*s  %-9s  %s\n" width "------" "----" "-----");
  List.iter
    (fun e ->
       let unit_suffix =
         match e.eunit with None -> "" | Some u -> " " ^ u
       in
       match e.data with
       | Dcounter c ->
         Buffer.add_string buf
           (Printf.sprintf "%-*s  %-9s  %d%s\n" width e.ename "counter" c.n
              unit_suffix)
       | Dgauge g ->
         let v = if g.gset then fmt_float g.g else "-" in
         Buffer.add_string buf
           (Printf.sprintf "%-*s  %-9s  %s%s\n" width e.ename "gauge" v
              unit_suffix)
       | Dhist c ->
         let s = Histogram.snapshot_cell c in
         let mean = if s.count = 0 then 0. else s.sum /. float_of_int s.count in
         Buffer.add_string buf
           (Printf.sprintf
              "%-*s  %-9s  count=%d mean=%s min=%s max=%s%s\n" width e.ename
              "histogram" s.count (fmt_float mean) (fmt_float s.min)
              (fmt_float s.max) unit_suffix);
         if s.count > 0 then begin
           Buffer.add_string buf (Printf.sprintf "%-*s    " width "");
           Buffer.add_string buf
             (String.concat "  "
                (List.filter_map
                   (fun (le, n) ->
                      if n = 0 then None
                      else Some (Printf.sprintf "le %s: %d" (fmt_bound le) n))
                   s.buckets));
           Buffer.add_char buf '\n'
         end)
    es;
  Buffer.contents buf

(* JSON helpers: numbers must be finite, strings escaped. *)

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun ch ->
       match ch with
       | '"' -> Buffer.add_string buf "\\\""
       | '\\' -> Buffer.add_string buf "\\\\"
       | '\n' -> Buffer.add_string buf "\\n"
       | '\r' -> Buffer.add_string buf "\\r"
       | '\t' -> Buffer.add_string buf "\\t"
       | c when Char.code c < 0x20 ->
         Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_float f =
  if Float.is_nan f || f = infinity || f = neg_infinity then "0"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let to_json_lines t =
  let buf = Buffer.create 1024 in
  List.iter
    (fun e ->
       let unit_ = match e.eunit with None -> "" | Some u -> u in
       let head =
         Printf.sprintf "{\"metric\":\"%s\",\"kind\":\"%s\",\"unit\":\"%s\""
           (json_escape e.ename) (kind_name e.data) (json_escape unit_)
       in
       Buffer.add_string buf head;
       (match e.data with
        | Dcounter c -> Buffer.add_string buf (Printf.sprintf ",\"value\":%d" c.n)
        | Dgauge g ->
          Buffer.add_string buf
            (Printf.sprintf ",\"value\":%s" (json_float (if g.gset then g.g else 0.)))
        | Dhist c ->
          let s = Histogram.snapshot_cell c in
          Buffer.add_string buf
            (Printf.sprintf ",\"count\":%d,\"sum\":%s,\"min\":%s,\"max\":%s"
               s.count (json_float s.sum) (json_float s.min) (json_float s.max));
          Buffer.add_string buf ",\"buckets\":[";
          Buffer.add_string buf
            (String.concat ","
               (List.map
                  (fun (le, n) ->
                     let le_json =
                       if le = infinity then "\"+inf\"" else json_float le
                     in
                     Printf.sprintf "{\"le\":%s,\"n\":%d}" le_json n)
                  s.buckets));
          Buffer.add_char buf ']');
       Buffer.add_string buf "}\n")
    (entries t);
  Buffer.contents buf

type sink = Null | Text of (string -> unit) | Json of (string -> unit)

let emit t = function
  | Null -> ()
  | Text k -> k (render_table t)
  | Json k -> k (to_json_lines t)
