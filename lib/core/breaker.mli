(** Per-pipeline circuit breaker: closed / open / half-open.

    Generalises the PR-2 receiver quarantine.  Consecutive failures up to a
    threshold trip the breaker [Open]; with no cooldown it stays open for
    good (the old quarantine semantics), with a cooldown it turns
    [Half_open] after [cooldown_s] of (simulated) time and admits probe
    deliveries — a probe success closes the circuit, a probe failure
    re-opens it for another cooldown.

    Time is always passed in by the caller ([~now], seconds), so breakers
    are deterministic under [Transport.Netsim]'s virtual clock and the
    per-registry {!Obs} clocks (docs/GATEWAY.md). *)

type state = Closed | Open | Half_open

val pp_state : Format.formatter -> state -> unit

(** 0 = closed, 1 = half-open, 2 = open — the encoding used by the
    [gateway.breaker_open] style gauges. *)
val state_level : state -> int

type t

(** [create ~threshold ~cooldown_s ()] — trip after [threshold] consecutive
    failures (default 3, must be >= 1).  [cooldown_s] enables half-open
    probing; omit it for a permanently-open trip.  [on_trip] runs
    synchronously each time the breaker trips open, after the state
    change — the anomaly hook the {!Obs.Flight} recorder attaches to.
    Raises [Invalid_argument] on out-of-range arguments. *)
val create : ?threshold:int -> ?cooldown_s:float -> ?on_trip:(t -> unit) -> unit -> t

(** Whether a delivery may proceed at time [now].  [Closed] always admits;
    [Open] admits nothing until the cooldown elapses, then flips to
    [Half_open]; [Half_open] admits the delivery as a probe. *)
val admit : t -> now:float -> bool

(** Record a successful delivery.  Returns [true] when this closed a
    half-open circuit (a probe recovery). *)
val record_success : t -> bool

(** Record a failed delivery at time [now].  Returns [true] when this
    failure tripped the breaker open (threshold reached, or a half-open
    probe failed). *)
val record_failure : t -> now:float -> bool

val state : t -> state
val threshold : t -> int
val consecutive_failures : t -> int

(** Times the breaker tripped open over its lifetime. *)
val trips : t -> int

(** Probe deliveries admitted while half-open. *)
val probes : t -> int

(** Earliest time an open breaker will admit a probe ([None] when closed,
    or open with no cooldown). *)
val retry_at : t -> float option

(** Force the breaker closed and clear the failure streak. *)
val reset : t -> unit
