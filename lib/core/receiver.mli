(** Receiver-side message processing — Algorithm 2 of the paper.

    The expensive steps (MaxMatch over candidate formats, Ecode
    compilation, conversion planning) run only the first time a given
    incoming format is seen; the resulting pipeline — transform, then
    handler — is cached and reused for every later message of that
    format. *)

open Pbio

type handler = Value.t -> unit

(** How a delivered message reached its handler. *)
type via =
  | Exact  (** same structure; no per-message work *)
  | Reordered  (** perfect match, different field order *)
  | Converted  (** imperfect match: defaults filled, extras dropped *)
  | Morphed of string  (** Ecode retro-transformation to the named format *)
  | Morphed_converted of string
      (** transformation, then structural conversion to the registered
          format *)

val pp_via : Format.formatter -> via -> unit

type outcome =
  | Delivered of {
      format_name : string;
      via : via;
    }
  | Defaulted  (** no match; the default handler ran *)
  | Rejected of string  (** no match and no default handler *)

val pp_outcome : Format.formatter -> outcome -> unit

type stats = {
  mutable cache_hits : int;
  mutable cold_paths : int;
  mutable delivered : int;
  mutable rejected : int;
  mutable defaulted : int;
  mutable transform_failures : int;  (** run-time transformation errors *)
  mutable quarantined : int;  (** breaker trips (pipelines quarantined) *)
  mutable recovered : int;
      (** half-open probe deliveries that closed a tripped breaker again
          (only with [quarantine_cooldown_s]) *)
}

type t

(** Everything a receiver is created with, as one record: call sites name
    only the knobs they change and take {!Config.default} (or the {!Config.v}
    builder) for the rest. *)
module Config : sig
  type t = {
    thresholds : Maxmatch.thresholds;
    weights : Weighted.t option;
        (** when set, MaxMatch runs importance-weighted and the thresholds
            apply on the weighted scale *)
    engine : Xform.engine;
        (** how attached transformations execute: compiled closures in
            production, the interpreter for the A1 ablation *)
    quarantine_after : int;
        (** consecutive run-time transformation failures after which a
            cached pipeline's {!Breaker} trips — without a cooldown the
            pipeline is replaced with a fast Reject so a poisonous format
            stops costing transformation work (see docs/FAULTS.md); must
            be >= 1 *)
    quarantine_cooldown_s : float option;
        (** when set, a quarantined pipeline is not discarded: its breaker
            re-admits a probe delivery after this many seconds of registry
            time — probe success recovers the pipeline, probe failure
            re-opens it (closed / open / half-open, docs/GATEWAY.md);
            must be > 0 when given *)
    metrics : Obs.t;
        (** registry receiving the [receiver.*] counters and histograms
            (see docs/OBSERVABILITY.md) *)
    ctx : Ctx.t option;
        (** capability context for the wire fast paths: fused morph plans
            come from the context's codec cache and staged decodes run
            [Wire.decode ~ctx].  [None] (the default) keeps the
            process-global caches; pass a context when receivers run on
            multiple domains (docs/CONCURRENCY.md) *)
    flight : Obs.Flight.recorder option;
        (** when set, every quarantine triggers an {!Obs.Flight} incident
            capture (kind ["quarantine"]) for post-mortem analysis *)
  }

  (** Default thresholds, no weights, compiled engine, quarantine after 3,
      [Obs.null] metrics, no context (process-global caches). *)
  val default : t

  (** Keyword-argument builder over {!default}. *)
  val v :
    ?thresholds:Maxmatch.thresholds ->
    ?weights:Weighted.t ->
    ?engine:Xform.engine ->
    ?quarantine_after:int ->
    ?quarantine_cooldown_s:float ->
    ?metrics:Obs.t ->
    ?ctx:Ctx.t ->
    ?flight:Obs.Flight.recorder ->
    unit ->
    t
end

(** [create ()] makes an empty receiver with {!Config.default}.  Raises
    [Invalid_argument] when the config is out of range
    ([quarantine_after < 1]). *)
val create : ?config:Config.t -> unit -> t

val config : t -> Config.t

(** Register a format the application understands, with the handler invoked
    for (possibly morphed) messages delivered in that format.  Clears
    planned pipelines, since the matching space changed.  Raises
    [Invalid_argument] on an ill-formed format. *)
val register : t -> Ptype.record -> handler -> unit

(** Handler for messages no registered format accepts (the paper's default
    handler, Algorithm 2 fallback). *)
val set_default_handler : t -> (Meta.format_meta -> Value.t -> unit) -> unit

(** Observe every processed message: the transformed value (when one was
    produced) and the outcome.  Used by the chaos harness to compare
    per-record morphing outcomes across runs; [None] clears the probe. *)
val set_delivery_probe : t -> (Value.t option -> outcome -> unit) option -> unit

(** Process one incoming message given its format meta-data: cache lookup,
    else plan (MaxMatch over the format and its transformation targets,
    code generation, conversion), cache, run. *)
val deliver : t -> Meta.format_meta -> Value.t -> outcome

(** Decode a complete wire message (as produced by {!Pbio.Wire.encode}
    under [meta]'s body format) and deliver it.  Malformed or truncated
    messages are {!Rejected}, never an exception: receivers stay up under
    hostile input. *)
val deliver_wire : t -> Meta.format_meta -> string -> outcome

(** Zero-copy variant of {!deliver_wire}: the message arrives as a
    {!Pbio.Slice.t} straight off the transport buffer.  When the cached
    pipeline fuses, the lazy slice plan runs — dropped source fields are
    never materialised and record skeletons come from the calling
    domain's arena ([Ctx.arena] of the configured context, or of
    [Ctx.default]), which is recycled when the delivery returns: a
    handler that retains the delivered value must [Value.copy] it
    (docs/PERFORMANCE.md).  Non-fusable pipelines fall back to the
    staged string path via one boundary copy.  Outcomes, stats, metrics
    names and trace spans match {!deliver_wire} on every input,
    malformed ones included.  Ticks [codec.lazy_fields_materialized] /
    [codec.lazy_fields_skipped] and the [arena.bytes_recycled] gauge. *)
val deliver_wire_lazy : t -> Meta.format_meta -> Slice.t -> outcome

(** Describe, without delivering or caching, what Algorithm 2 would do
    with messages of this format — for diagnostics and operator tooling. *)
val explain : t -> Meta.format_meta -> string

val stats : t -> stats
val registered_formats : t -> Ptype.record list
val handler_for : t -> Ptype.record -> handler option

(** Breaker state of the cached pipeline for this format meta, when one has
    been planned ([None] before the first delivery). *)
val breaker_state : t -> Meta.format_meta -> Breaker.state option
