(** Retro-transformations: the Ecode snippets a writer associates with a
    new format so receivers can convert messages into older formats
    (paper, Figure 1). *)

open Pbio

type spec = Meta.xform_spec = {
  source : Ptype.record option;
      (** the format the snippet reads from; [None] = the base format of
          the meta it is attached to *)
  target : Ptype.record;
  code : string;
}

type compiled = {
  source : Ptype.record;
  spec : spec;
  run : Value.t -> Value.t;
}

(** Execution engine for transformation code.  Production paths use
    [Compiled] (closure compilation, the dynamic-code-generation analogue);
    [Interpreted] exists for the A1 ablation. *)
type engine =
  | Compiled
  | Interpreted

(** Convenience constructor for writer-side registration.  [source]
    defaults to the base format of the meta the spec is attached to. *)
val spec : ?source:Ptype.record -> target:Ptype.record -> string -> spec

(** Parse, typecheck and compile a transformation from messages of
    [source] format into the spec's target.  Failures are
    [Error (`Xform _)]. *)
val compile :
  ?engine:engine -> source:Ptype.record -> spec -> (compiled, Err.t) result

(** Validate without keeping the compiled form: writers call this at
    registration time so broken snippets fail at the sender, not at some
    receiver. *)
val check : source:Ptype.record -> spec -> (unit, Err.t) result
