(* Message Morphing — public facade.

   The paper's primary contribution: combine out-of-band binary meta-data
   (PBIO format descriptions, {!Pbio}) with dynamically generated
   transformation code ({!Ecode}) so receivers convert incoming messages of
   unknown formats into formats they understand, with no negotiation and no
   application changes.

   Typical use:

   {[
     (* writer side: describe the new format and how to roll it back *)
     let meta =
       Morph.meta v2_format
         ~xforms:[ Morph.xform ~target:v1_format retro_code ]
     in
     (* reader side *)
     let recv = Morph.Receiver.create () in
     Morph.Receiver.register recv v1_format my_v1_handler;
     ignore (Morph.Receiver.deliver recv meta incoming_value)
   ]} *)

module Breaker = Breaker
module Diff = Diff
module Pool = Pool
module Maxmatch = Maxmatch
module Weighted = Weighted
module Xform = Xform
module Receiver = Receiver

open Pbio

(* Writer-side helpers *)

let xform ?source ~(target : Ptype.record) (code : string) : Meta.xform_spec =
  { Meta.source; target; code }

let meta ?(xforms = []) (body : Ptype.record) : Meta.format_meta =
  (match Ptype.validate body with
   | Ok () -> ()
   | Error e -> invalid_arg (Fmt.str "Morph.meta: %s: %s" e.Ptype.where e.Ptype.what));
  List.iter
    (fun (x : Meta.xform_spec) ->
       match Ptype.validate x.target with
       | Ok () -> ()
       | Error e ->
         invalid_arg (Fmt.str "Morph.meta: transformation target %s: %s"
                        e.Ptype.where e.Ptype.what))
    xforms;
  { Meta.body; xforms }

(* Writer-side sanity check: compile every attached transformation once so a
   broken snippet is reported at registration, not at receivers. *)
let check_meta (m : Meta.format_meta) : (unit, Err.t) result =
  let rec go = function
    | [] -> Ok ()
    | (x : Meta.xform_spec) :: rest ->
      (* A chained spec compiles against its declared source, not the base
         format — exactly as the receiver will compile it. *)
      let source = Option.value x.source ~default:m.Meta.body in
      (match Xform.check ~source x with
       | Ok () -> go rest
       | Error _ as e -> e)
  in
  go m.Meta.xforms

(* One-shot morphing without a receiver: convert [value] of format
   [m.body] into [target] using the attached transformations and structural
   conversion, if the thresholds allow it. *)
let morph_to ?(thresholds = Maxmatch.default_thresholds) ?(engine = Xform.Compiled)
    (m : Meta.format_meta) ~(target : Ptype.record) (value : Value.t) :
  (Value.t, Err.t) result =
  let r = Receiver.create ~config:(Receiver.Config.v ~thresholds ~engine ()) () in
  let result = ref None in
  Receiver.register r target (fun v -> result := Some v);
  match Receiver.deliver r m value with
  | Receiver.Delivered _ ->
    (match !result with
     | Some v -> Ok v
     | None -> Error (`Internal "handler did not run"))
  | Receiver.Defaulted -> Error (`No_match "fell through to default handler")
  | Receiver.Rejected reason -> Error (`No_match reason)
