(* Receiver-side message processing — Algorithm 2 of the paper.

   The expensive steps (MaxMatch over candidate formats, Ecode compilation,
   conversion planning) run only the first time a given incoming format is
   seen; the resulting pipeline — transform, then handler — is cached and
   reused for every later message of that format. *)

open Pbio

type handler = Value.t -> unit

type registered = {
  fmt : Ptype.record;
  handler : handler;
}

(* How a delivered message reached its handler. *)
type via =
  | Exact                  (* same structure; no work per message *)
  | Reordered              (* perfect match, different field order *)
  | Converted              (* imperfect match: defaults filled, extras dropped *)
  | Morphed of string      (* Ecode retro-transformation to the named format *)
  | Morphed_converted of string (* transformation, then structural conversion *)

let pp_via ppf = function
  | Exact -> Fmt.string ppf "exact"
  | Reordered -> Fmt.string ppf "reordered"
  | Converted -> Fmt.string ppf "converted"
  | Morphed t -> Fmt.pf ppf "morphed(%s)" t
  | Morphed_converted t -> Fmt.pf ppf "morphed+converted(%s)" t

type outcome =
  | Delivered of { format_name : string; via : via }
  | Defaulted
  | Rejected of string

let pp_outcome ppf = function
  | Delivered { format_name; via } ->
    Fmt.pf ppf "delivered to %s via %a" format_name pp_via via
  | Defaulted -> Fmt.string ppf "default handler"
  | Rejected reason -> Fmt.pf ppf "rejected: %s" reason

type stats = {
  mutable cache_hits : int;
  mutable cold_paths : int;
  mutable delivered : int;
  mutable rejected : int;
  mutable defaulted : int;
  mutable transform_failures : int;
  mutable quarantined : int;
  mutable recovered : int;
}

type pipeline =
  | Accept of {
      format_name : string;
      via : via;
      transform : Value.t -> Value.t; (* identity when [via] is Exact *)
      handler : handler;
      provenance : (string * string) list;
      (* how the plan was derived (source/target formats, chain hops,
         mismatch ratio); attached to the delivery trace span *)
      fused : (Ptype.record * Ptype.record) option;
      (* when the whole transform is a structural conversion (no Ecode
         step), [deliver_wire] can run the fused decode->morph plan from
         [Codec]: bytes of the first format straight into a value of the
         second, no intermediate source-format tree *)
    }
  | Reject of string

type cache_entry = {
  key : Meta.format_meta;
  mutable pipeline : pipeline;
  breaker : Breaker.t;
  (* counts run-time transform failures since the last success; tripping
     quarantines the pipeline.  Without a cooldown (the default) the trip
     replaces the pipeline with a fast Reject for good; with
     [quarantine_cooldown_s] the breaker re-admits a probe delivery after
     the cooldown (closed / open / half-open). *)
}

(* All the knobs a receiver is created with, collapsed into one record so
   call sites name only what they change. *)
module Config = struct
  type t = {
    thresholds : Maxmatch.thresholds;
    weights : Weighted.t option;
    (* when set, MaxMatch runs importance-weighted: the thresholds are
       interpreted on the weighted scale *)
    engine : Xform.engine;
    quarantine_after : int;
    quarantine_cooldown_s : float option;
    metrics : Obs.t;
    ctx : Ctx.t option;
    (* capability context for the wire fast paths: fused morph plans come
       from [Ctx.codecs ctx] and staged decodes run [Wire.decode ~ctx].
       [None] keeps the legacy process-global caches — required for
       byte-identical goldens, deprecated for new code. *)
    flight : Obs.Flight.recorder option;
    (* anomaly hook: each quarantine (breaker trip on a cached pipeline)
       triggers a flight-recorder incident capture *)
  }

  let default =
    {
      thresholds = Maxmatch.default_thresholds;
      weights = None;
      engine = Xform.Compiled;
      quarantine_after = 3;
      quarantine_cooldown_s = None;
      metrics = Obs.null;
      ctx = None;
      flight = None;
    }

  let v ?(thresholds = default.thresholds) ?weights ?(engine = default.engine)
      ?(quarantine_after = default.quarantine_after) ?quarantine_cooldown_s
      ?(metrics = Obs.null) ?ctx ?flight () =
    { thresholds; weights; engine; quarantine_after; quarantine_cooldown_s;
      metrics; ctx; flight }
end

(* Handles into the configured Obs registry; [rm_on] gates the clock reads
   around MaxMatch, planning and per-message transforms. *)
type rmetrics = {
  rm_on : bool;
  rm_reg : Obs.t;
  rm_cache_hits : Obs.Counter.h;
  rm_cache_misses : Obs.Counter.h;
  rm_delivered : Obs.Counter.h;
  rm_rejected : Obs.Counter.h;
  rm_defaulted : Obs.Counter.h;
  rm_transform_failures : Obs.Counter.h;
  rm_quarantined : Obs.Counter.h;
  rm_recovered : Obs.Counter.h;
  rm_maxmatch_ns : Obs.Histogram.h;
  rm_plan_ns : Obs.Histogram.h;
  rm_morph_ns : Obs.Histogram.h;
  rm_mismatch_ratio : Obs.Histogram.h;
  rm_chain_depth : Obs.Histogram.h;
  rm_fused_ns : Obs.Histogram.h;
  rm_staged_ns : Obs.Histogram.h;
  rm_lazy_ns : Obs.Histogram.h;
  rm_lazy_materialized : Obs.Counter.h;
  rm_lazy_skipped : Obs.Counter.h;
  rm_arena_bytes : Obs.Gauge.h;
}

let make_rmetrics reg =
  {
    rm_on = Obs.enabled reg;
    rm_reg = reg;
    rm_cache_hits = Obs.Counter.make reg "receiver.cache_hits";
    rm_cache_misses = Obs.Counter.make reg "receiver.cache_misses";
    rm_delivered = Obs.Counter.make reg "receiver.delivered";
    rm_rejected = Obs.Counter.make reg "receiver.rejected";
    rm_defaulted = Obs.Counter.make reg "receiver.defaulted";
    rm_transform_failures = Obs.Counter.make reg "receiver.transform_failures";
    rm_quarantined = Obs.Counter.make reg "receiver.quarantined";
    rm_recovered = Obs.Counter.make reg "receiver.recovered";
    rm_maxmatch_ns = Obs.Histogram.make reg ~unit_:"ns" "receiver.maxmatch_ns";
    rm_plan_ns = Obs.Histogram.make reg ~unit_:"ns" "receiver.plan_ns";
    rm_morph_ns = Obs.Histogram.make reg ~unit_:"ns" "receiver.morph_ns";
    rm_mismatch_ratio =
      Obs.Histogram.make reg ~buckets:Obs.ratio_buckets "receiver.mismatch_ratio";
    rm_chain_depth =
      Obs.Histogram.make reg ~buckets:[ 0.; 1.; 2.; 3.; 4.; 6.; 8. ]
        "receiver.chain_depth";
    (* wire-to-delivery latency split by path, so the fused win shows up
       in [stats] next to the staged decode-then-convert baseline *)
    rm_fused_ns = Obs.Histogram.make reg ~unit_:"ns" "codec.fused_ns";
    rm_staged_ns = Obs.Histogram.make reg ~unit_:"ns" "codec.staged_ns";
    rm_lazy_ns = Obs.Histogram.make reg ~unit_:"ns" "codec.lazy_ns";
    (* the lazy path's ledger: cells the plan actually built vs wire
       field sites it skipped past, and the cumulative bytes the arena
       served from its pools instead of the allocator *)
    rm_lazy_materialized = Obs.Counter.make reg "codec.lazy_fields_materialized";
    rm_lazy_skipped = Obs.Counter.make reg "codec.lazy_fields_skipped";
    rm_arena_bytes = Obs.Gauge.make reg ~unit_:"bytes" "arena.bytes_recycled";
  }

type t = {
  config : Config.t;
  m : rmetrics;
  mutable registered : registered list; (* registration order *)
  mutable default_handler : (Meta.format_meta -> Value.t -> unit) option;
  mutable probe : (Value.t option -> outcome -> unit) option;
  cache : (int, cache_entry list) Hashtbl.t;
  stats : stats;
}

let create ?(config = Config.default) () =
  if config.Config.quarantine_after < 1 then
    invalid_arg "Receiver.create: quarantine_after";
  (match config.Config.quarantine_cooldown_s with
   | Some c when not (c > 0.) ->
     invalid_arg "Receiver.create: quarantine_cooldown_s"
   | _ -> ());
  {
    config;
    m = make_rmetrics config.Config.metrics;
    registered = [];
    default_handler = None;
    probe = None;
    cache = Hashtbl.create 32;
    stats =
      { cache_hits = 0; cold_paths = 0; delivered = 0; rejected = 0; defaulted = 0;
        transform_failures = 0; quarantined = 0; recovered = 0 };
  }

let config t = t.config

let register t (fmt : Ptype.record) (handler : handler) : unit =
  (match Ptype.validate fmt with
   | Ok () -> ()
   | Error e -> invalid_arg (Fmt.str "Receiver.register: %s: %s" e.Ptype.where e.Ptype.what));
  t.registered <- t.registered @ [ { fmt; handler } ];
  (* Registered formats change the matching space: throw away planned
     pipelines so they are recomputed against the new set. *)
  Hashtbl.reset t.cache

let set_default_handler t f = t.default_handler <- Some f

(* Observe every processed message: the transformed value (when one was
   produced) and the outcome.  Used by the chaos harness to compare
   per-record morphing outcomes across runs. *)
let set_delivery_probe t f = t.probe <- f

let stats t = t.stats

let registered_formats t = List.map (fun r -> r.fmt) t.registered

let handler_for t (fmt : Ptype.record) : handler option =
  List.find_map
    (fun r -> if Ptype.equal_record r.fmt fmt then Some r.handler else None)
    t.registered

(* --- planning (the cold path) ------------------------------------------- *)

let identity_transform (v : Value.t) = v

(* MaxMatch under the receiver's configuration: plain Algorithm 1 scale, or
   the importance-weighted generalisation when weights are set.  Either way
   the result is reduced to the (f1, f2, perfect?) the planner needs. *)
let run_max_match t (set1 : Ptype.record list) (set2 : Ptype.record list) :
  (Ptype.record * Ptype.record * bool * float) option =
  let cfg = t.config in
  let t0 = if t.m.rm_on then Obs.now t.m.rm_reg else 0. in
  let result =
    match cfg.Config.weights with
    | None ->
      Option.map
        (fun (m : Maxmatch.match_result) ->
           Obs.Histogram.observe t.m.rm_mismatch_ratio m.Maxmatch.ratio;
           (m.f1, m.f2, Maxmatch.is_perfect m, m.Maxmatch.ratio))
        (Maxmatch.max_match ~thresholds:cfg.Config.thresholds set1 set2)
    | Some w ->
      let thresholds =
        { Weighted.diff_threshold =
            float_of_int cfg.Config.thresholds.Maxmatch.diff_threshold;
          mismatch_threshold = cfg.Config.thresholds.Maxmatch.mismatch_threshold }
      in
      Option.map
        (fun (m : Weighted.match_result) ->
           Obs.Histogram.observe t.m.rm_mismatch_ratio m.Weighted.ratio;
           ( m.f1,
             m.f2,
             m.Weighted.diff12 = 0.0 && m.Weighted.diff21 = 0.0,
             m.Weighted.ratio ))
        (Weighted.max_match ~weights:w ~thresholds set1 set2)
  in
  if t.m.rm_on then
    Obs.Histogram.observe t.m.rm_maxmatch_ns (Obs.now t.m.rm_reg -. t0);
  result

(* The provenance record attached to the delivery trace span: which
   format morphed into which, over how many chain hops, at what
   mismatch ratio. *)
let provenance_attrs ~(source : Ptype.record) ~(target : Ptype.record) ~via
    ~hops ~ratio =
  [
    ("source", source.Ptype.rname);
    ("target", target.Ptype.rname);
    ("via", Fmt.str "%a" pp_via via);
    ("chain_hops", string_of_int hops);
    ("mismatch_ratio", Printf.sprintf "%.3f" ratio);
  ]

(* Build the per-format pipeline following Algorithm 2, lines 11-30. *)
let plan_uninstrumented t (meta : Meta.format_meta) : pipeline =
  let fm = meta.Meta.body in
  (* The set of formats fm can be transformed to — including multi-hop
     chains: a spec whose source is a previously reachable format extends
     the chain (Figure 1's Rev 2.0 -> Rev 1.0 -> Rev 0.0 lineage).
     Breadth-first over the transformation graph keeps each reachable
     format's shortest spec path; cycles stop at the visited check. *)
  let reachable : (Ptype.record * Meta.xform_spec list) list =
    let visited = ref [ fm ] in
    let seen f = List.exists (Ptype.equal_record f) !visited in
    let rec bfs acc frontier =
      match frontier with
      | [] -> List.rev acc
      | (f, path) :: rest ->
        let extensions =
          List.filter_map
            (fun (x : Meta.xform_spec) ->
               let src = Option.value x.source ~default:fm in
               if Ptype.equal_record src f && not (seen x.target) then begin
                 visited := x.target :: !visited;
                 Some (x.target, path @ [ x ])
               end
               else None)
            meta.Meta.xforms
        in
        bfs ((f, path) :: acc) (rest @ extensions)
    in
    bfs [] [ (fm, []) ]
  in
  (* Candidate registered formats: same name as fm (the paper's rule), or
     the name of any transformation target on offer — a transformation
     declares the role equivalence that names normally imply. *)
  let names = List.map (fun (f, _) -> f.Ptype.rname) reachable in
  let fr =
    List.filter_map
      (fun r -> if List.mem r.fmt.Ptype.rname names then Some r.fmt else None)
      t.registered
  in
  if fr = [] then
    Reject (Fmt.str "no registered format named %S" fm.Ptype.rname)
  else
    (* Line 11: MaxMatch(fm, Fr) over same-name formats; only a perfect
       match short-circuits. *)
    let fr_same = List.filter (fun f -> f.Ptype.rname = fm.Ptype.rname) fr in
    let direct = run_max_match t [ fm ] fr_same in
    match direct with
    | Some (_, f2, true, ratio) ->
      let via, transform, fused =
        if Ptype.equal_record fm f2 then (Exact, identity_transform, None)
        else (Reordered, Convert.compile ~from_:fm ~into:f2, Some (fm, f2))
      in
      let handler = Option.get (handler_for t f2) in
      Accept
        {
          format_name = f2.Ptype.rname;
          via;
          transform;
          handler;
          provenance = provenance_attrs ~source:fm ~target:f2 ~via ~hops:0 ~ratio;
          fused;
        }
    | Some _ | None ->
      (* Line 16: MaxMatch(Ft, Fr). *)
      let ft = List.map fst reachable in
      (match run_max_match t ft fr with
       | None ->
         Reject
           (Fmt.str "no acceptable match for format %S within thresholds \
                     (diff <= %d, Mr <= %.2f)"
              fm.Ptype.rname t.config.Config.thresholds.Maxmatch.diff_threshold
              t.config.Config.thresholds.Maxmatch.mismatch_threshold)
       | Some (mf1, mf2, perfect, ratio) ->
         let morph_step =
           if Ptype.equal_record mf1 fm then Ok None
           else begin
             (* Lines 21-24: generate the fm -> f1 transformation code,
                composing each hop of the chain. *)
             let path =
               List.find_map
                 (fun (f, path) ->
                    if Ptype.equal_record f mf1 then Some path else None)
                 reachable
             in
             match path with
             | None | Some [] ->
               Error "internal: matched transformation target has no spec path"
             | Some specs ->
               Obs.Histogram.observe t.m.rm_chain_depth
                 (float_of_int (List.length specs));
               let rec compile_chain source acc = function
                 | [] -> Ok (Some (acc, List.length specs))
                 | (spec : Meta.xform_spec) :: rest ->
                   (match
                      Xform.compile ~engine:t.config.Config.engine ~source spec
                    with
                    | Error e -> Error (Err.to_string e)
                    | Ok compiled ->
                      let step = compiled.Xform.run in
                      compile_chain spec.target
                        (fun v -> step (acc v))
                        rest)
               in
               compile_chain fm (fun v -> v) specs
           end
         in
         (match morph_step with
          | Error e -> Reject e
          | Ok morph ->
            (* Lines 26-29: imperfect match — fill defaults for missing
               fields, drop fields absent from f2. *)
            let finish =
              if perfect then
                if Ptype.equal_record mf1 mf2 then None
                else Some (Convert.compile ~from_:mf1 ~into:mf2)
              else Some (Convert.compile ~from_:mf1 ~into:mf2)
            in
            let transform, via, fused =
              match morph, finish with
              | None, None -> (identity_transform, Exact, None)
              | None, Some conv ->
                let via = if perfect then Reordered else Converted in
                (* mf1 = fm here (no morph step): the whole transform is a
                   structural conversion, so wire delivery can fuse it *)
                (conv, via, Some (fm, mf2))
              | Some (run, _), None -> (run, Morphed mf1.Ptype.rname, None)
              | Some (run, _), Some conv ->
                ((fun v -> conv (run v)), Morphed_converted mf1.Ptype.rname, None)
            in
            let hops = match morph with Some (_, h) -> h | None -> 0 in
            let handler = Option.get (handler_for t mf2) in
            Accept
              {
                format_name = mf2.Ptype.rname;
                via;
                transform;
                handler;
                provenance =
                  provenance_attrs ~source:fm ~target:mf2 ~via ~hops ~ratio;
                fused;
              }))

let plan t (meta : Meta.format_meta) : pipeline =
  if not t.m.rm_on then plan_uninstrumented t meta
  else begin
    let t0 = Obs.now t.m.rm_reg in
    let p = plan_uninstrumented t meta in
    Obs.Histogram.observe t.m.rm_plan_ns (Obs.now t.m.rm_reg -. t0);
    p
  end

(* --- delivery ------------------------------------------------------------ *)

let find_cached t (meta : Meta.format_meta) : cache_entry option =
  let h = Meta.hash meta in
  match Hashtbl.find_opt t.cache h with
  | None -> None
  | Some entries -> List.find_opt (fun e -> Meta.equal e.key meta) entries

let cache_pipeline t (meta : Meta.format_meta) (p : pipeline) : cache_entry =
  let h = Meta.hash meta in
  let prev = Option.value ~default:[] (Hashtbl.find_opt t.cache h) in
  let breaker =
    Breaker.create ~threshold:t.config.Config.quarantine_after
      ?cooldown_s:t.config.Config.quarantine_cooldown_s ()
  in
  let entry = { key = meta; pipeline = p; breaker } in
  Hashtbl.replace t.cache h (entry :: prev);
  entry

let breaker_state t (meta : Meta.format_meta) : Breaker.state option =
  Option.map (fun e -> Breaker.state e.breaker) (find_cached t meta)

let probe t (v : Value.t option) (o : outcome) : unit =
  match t.probe with Some f -> f v o | None -> ()

(* A transformation that keeps failing at run time is quarantined: its
   breaker trips.  Without a cooldown (the default) the cached pipeline
   becomes a fast Reject for good, so a poisonous format neither crashes
   the receiver nor pays planning or transformation work on every further
   message.  With [quarantine_cooldown_s] the pipeline is kept and the
   breaker gates it: open until the cooldown elapses, then a half-open
   probe decides whether to close or re-open the circuit. *)
let quarantine t (entry : cache_entry) : unit =
  t.stats.quarantined <- t.stats.quarantined + 1;
  Obs.Counter.incr t.m.rm_quarantined;
  (match t.config.Config.flight with
   | Some fl ->
     Obs.Flight.trigger fl ~kind:"quarantine"
       ~reason:
         (Fmt.str "pipeline for format #%d quarantined after %d consecutive \
                   transformation failures"
            (Meta.hash entry.key)
            (Breaker.consecutive_failures entry.breaker))
   | None -> ());
  if t.config.Config.quarantine_cooldown_s = None then
    entry.pipeline <-
      Reject
        (Fmt.str "quarantined after %d consecutive transformation failures"
           (Breaker.consecutive_failures entry.breaker))

(* Algorithm 2's fallback: the default handler when one is set, otherwise a
   rejection.  Shared by unmatched formats, quarantined pipelines and
   open-breaker fast-fails. *)
let reject_or_default t (meta : Meta.format_meta) (v : Value.t) reason : outcome =
  match t.default_handler with
  | Some f ->
    f meta v;
    t.stats.defaulted <- t.stats.defaulted + 1;
    Obs.Counter.incr t.m.rm_defaulted;
    let o = Defaulted in
    probe t None o;
    o
  | None ->
    t.stats.rejected <- t.stats.rejected + 1;
    Obs.Counter.incr t.m.rm_rejected;
    let o = Rejected reason in
    probe t None o;
    o

let run_pipeline t (entry : cache_entry) (meta : Meta.format_meta) (v : Value.t) :
  outcome =
  let outcome =
    match entry.pipeline with
    | Accept { format_name; via; transform; handler; _ } ->
      (* the registry clock ticks nanoseconds; breakers count seconds *)
      let now = Obs.now t.m.rm_reg *. 1e-9 in
      if not (Breaker.admit entry.breaker ~now) then
        (* Open circuit: fast-fail without paying the transform.  Only
           reachable with a cooldown configured (otherwise the trip already
           replaced the pipeline with a Reject). *)
        reject_or_default t meta v
          (Fmt.str "quarantined after %d consecutive transformation failures"
             (Breaker.consecutive_failures entry.breaker))
      else begin
        (* A transformation can still fail at run time on values its code
           never anticipated (hostile or corrupt input); that rejects the
           message rather than crashing the receiver.  Handler exceptions
           propagate: they are application bugs, not message faults. *)
        let t0 = if t.m.rm_on then Obs.now t.m.rm_reg else 0. in
        match transform v with
        | v' ->
          if t.m.rm_on then
            Obs.Histogram.observe t.m.rm_morph_ns (Obs.now t.m.rm_reg -. t0);
          if Breaker.record_success entry.breaker then begin
            t.stats.recovered <- t.stats.recovered + 1;
            Obs.Counter.incr t.m.rm_recovered
          end;
          handler v';
          t.stats.delivered <- t.stats.delivered + 1;
          Obs.Counter.incr t.m.rm_delivered;
          let o = Delivered { format_name; via } in
          probe t (Some v') o;
          o
        | exception
            (Value.Type_error msg
            | Ecode.Compile.Runtime_error msg
            | Ecode.Interp.Runtime_error msg) ->
          t.stats.rejected <- t.stats.rejected + 1;
          t.stats.transform_failures <- t.stats.transform_failures + 1;
          Obs.Counter.incr t.m.rm_rejected;
          Obs.Counter.incr t.m.rm_transform_failures;
          if Breaker.record_failure entry.breaker ~now then
            quarantine t entry;
          let o = Rejected (Fmt.str "transformation failed: %s" msg) in
          probe t None o;
          o
      end
    | Reject reason -> reject_or_default t meta v reason
  in
  outcome

(* Cache lookup with hit/miss accounting; plans and caches the pipeline on
   a miss. *)
let lookup t (meta : Meta.format_meta) : bool * cache_entry =
  match find_cached t meta with
  | Some entry ->
    t.stats.cache_hits <- t.stats.cache_hits + 1;
    Obs.Counter.incr t.m.rm_cache_hits;
    (true, entry)
  | None ->
    t.stats.cold_paths <- t.stats.cold_paths + 1;
    Obs.Counter.incr t.m.rm_cache_misses;
    (false, cache_pipeline t meta (plan t meta))

let deliver_entry t ~hit (entry : cache_entry) (meta : Meta.format_meta)
    (v : Value.t) : outcome =
  if not t.m.rm_on then run_pipeline t entry meta v
  else begin
    (* Trace-only span (no histogram, so the flat [span:*] metric names
       stay unchanged) carrying the morph provenance of this message. *)
    let cache = ("cache", if hit then "hit" else "miss") in
    let attrs =
      match entry.pipeline with
      | Accept { provenance; _ } ->
        let hops =
          match List.assoc_opt "chain_hops" provenance with
          | Some h -> h
          | None -> "0"
        in
        let ecode =
          if hops = "0" then "none" else if hit then "reuse" else "compile"
        in
        cache :: ("ecode", ecode) :: provenance
      | Reject _ -> [ cache ]
    in
    Obs.Trace.with_span ~attrs t.m.rm_reg "morph.deliver" (fun () ->
        run_pipeline t entry meta v)
  end

let deliver t (meta : Meta.format_meta) (v : Value.t) : outcome =
  let hit, entry = lookup t meta in
  deliver_entry t ~hit entry meta v

let reject_wire t e : outcome =
  t.stats.rejected <- t.stats.rejected + 1;
  Obs.Counter.incr t.m.rm_rejected;
  Rejected (Fmt.str "wire decode failed: %s" (Err.to_string e))

(* Successful fused delivery: the value is already in the target layout, so
   only the bookkeeping of [run_pipeline]'s Accept branch remains.  Handler
   exceptions propagate, as on the staged path. *)
let deliver_fused t ~hit (entry : cache_entry) ~format_name ~via ~handler
    ~provenance (v' : Value.t) : outcome =
  let finish () =
    ignore (Breaker.record_success entry.breaker : bool);
    handler v';
    t.stats.delivered <- t.stats.delivered + 1;
    Obs.Counter.incr t.m.rm_delivered;
    let o = Delivered { format_name; via } in
    probe t (Some v') o;
    o
  in
  if not t.m.rm_on then finish ()
  else
    let attrs =
      ("cache", if hit then "hit" else "miss")
      :: ("ecode", "none") :: ("convert", "fused") :: provenance
    in
    Obs.Trace.with_span ~attrs t.m.rm_reg "morph.deliver" finish

(* Decode a whole wire message (as produced by [Pbio.Wire.encode]) and
   deliver it.  [meta] must describe the message's wire format.

   When the cached pipeline's transform is purely structural (no Ecode
   step), the decode and the conversion run as one fused [Codec] plan —
   the sender-format value tree is never built.  Ecode pipelines and plain
   value delivery keep the staged decode-then-transform path. *)
let deliver_wire t (meta : Meta.format_meta) (message : string) : outcome =
  let hit, entry = lookup t meta in
  match entry.pipeline with
  | Accept { fused = Some (from_, into); format_name; via; handler; provenance; _ } ->
    let t0 = if t.m.rm_on then Obs.now t.m.rm_reg else 0. in
    (match
       let h = Codec.read_header message in
       let mor =
         match t.config.Config.ctx with
         | Some ctx ->
           Codec.morpher_in (Ctx.codecs ctx) ~endian:h.Codec.endian ~from_ ~into
         | None -> Codec.morpher_for ~endian:h.Codec.endian ~from_ ~into
       in
       Codec.morph_payload mor ~pos:Codec.header_size message
     with
     | v' ->
       if t.m.rm_on then
         Obs.Histogram.observe t.m.rm_fused_ns (Obs.now t.m.rm_reg -. t0);
       deliver_fused t ~hit entry ~format_name ~via ~handler ~provenance v'
     | exception Codec.Decode_error msg -> reject_wire t (`Decode msg)
     | exception Value.Type_error msg -> reject_wire t (`Type msg))
  | Accept _ | Reject _ ->
    let t0 = if t.m.rm_on then Obs.now t.m.rm_reg else 0. in
    (match Wire.decode ?ctx:t.config.Config.ctx meta.Meta.body message with
     | Ok v ->
       let o = deliver_entry t ~hit entry meta v in
       (match entry.pipeline, o with
        | Accept _, Delivered _ when t.m.rm_on ->
          Obs.Histogram.observe t.m.rm_staged_ns (Obs.now t.m.rm_reg -. t0)
        | _ -> ());
       o
     | Error e -> reject_wire t e)

(* Zero-copy delivery: the message arrives as a [Slice.t] straight off
   the transport buffer and — when the cached pipeline fuses — runs the
   lazy slice plan: dropped source fields are never materialised, and
   the target record's skeletons come from this domain's arena
   ([Ctx.arena] of the configured context), recycled when the delivery
   returns.  The handler and probe run before the recycle, so they see
   live cells; a handler that retains the value past delivery must
   [Value.copy] (docs/PERFORMANCE.md).  Non-fusable pipelines cross back
   to the staged string path — that [Slice.to_string] is the copying
   shim at the API boundary.

   Outcomes, stats and trace spans are identical to [deliver_wire] on
   every input, malformed ones included: the lazy plans accept and
   reject exactly the same messages (the fuzz-lazy oracle's invariant),
   which is what lets the `lazy` ingress mode reproduce `fused` golden
   summaries byte-for-byte.  Error *text* may differ on truncated
   input — the lazy scan blames a whole coalesced fixed span where the
   eager decoder blames its first missing field — but summaries count
   rejects, they never quote them. *)
let deliver_wire_lazy t (meta : Meta.format_meta) (s : Slice.t) : outcome =
  let hit, entry = lookup t meta in
  match entry.pipeline with
  | Accept { fused = Some (from_, into); format_name; via; handler; provenance; _ } ->
    let ctx = Option.value t.config.Config.ctx ~default:Ctx.default in
    let arena = Ctx.arena ctx in
    let bytes0 = Arena.bytes_recycled arena in
    let t0 = if t.m.rm_on then Obs.now t.m.rm_reg else 0. in
    (match
       let h = Codec.read_header_s s in
       let lmor =
         Codec.lmorpher_in (Ctx.codecs ctx) ~endian:h.Codec.endian ~from_ ~into
       in
       (lmor, Codec.lmorph_payload lmor ~arena ~pos:Codec.header_size s)
     with
     | lmor, v' ->
       if t.m.rm_on then begin
         Obs.Histogram.observe t.m.rm_lazy_ns (Obs.now t.m.rm_reg -. t0);
         let mat, skip = Codec.lmorpher_stats lmor in
         Obs.Counter.add t.m.rm_lazy_materialized mat;
         Obs.Counter.add t.m.rm_lazy_skipped skip
       end;
       let o =
         deliver_fused t ~hit entry ~format_name ~via ~handler ~provenance v'
       in
       (* end of delivery: pooled skeletons become reusable (a handler
          exception skips this — the arena then allocates fresh until
          the next successful delivery recycles, which is safe) *)
       Arena.recycle arena;
       (* a per-receiver delta, not the arena total: the arena is shared
          by every receiver on this domain, so the total depends on how
          deliveries shard across a pool — the delta is a pure function
          of this delivery, and merged registries sum correctly *)
       if t.m.rm_on then
         Obs.Gauge.add t.m.rm_arena_bytes
           (float_of_int (Arena.bytes_recycled arena - bytes0));
       o
     | exception Codec.Decode_error msg -> reject_wire t (`Decode msg)
     | exception Value.Type_error msg -> reject_wire t (`Type msg))
  | Accept _ | Reject _ ->
    let message = Slice.to_string s in
    let t0 = if t.m.rm_on then Obs.now t.m.rm_reg else 0. in
    (match Wire.decode ?ctx:t.config.Config.ctx meta.Meta.body message with
     | Ok v ->
       let o = deliver_entry t ~hit entry meta v in
       (match entry.pipeline, o with
        | Accept _, Delivered _ when t.m.rm_on ->
          Obs.Histogram.observe t.m.rm_staged_ns (Obs.now t.m.rm_reg -. t0)
        | _ -> ());
       o
     | Error e -> reject_wire t e)

(* Describe, without delivering or caching, what Algorithm 2 would do with
   messages of this format — for diagnostics and operator tooling. *)
let explain t (meta : Meta.format_meta) : string =
  match plan t meta with
  | Reject reason -> Fmt.str "reject: %s" reason
  | Accept { format_name; via; _ } ->
    Fmt.str "deliver to %s via %a" format_name pp_via via
