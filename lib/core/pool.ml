(* A small fixed-size domain pool for sharded delivery.

   Design goals, in order:
     1. Determinism — [map] assigns work by *index stride* (worker [k]
        handles indices [i] with [i mod width = k]), so the partition of
        work onto domains is a pure function of the array length and the
        pool width, never of scheduling.  Each worker processes its own
        indices in increasing order, so any per-shard mutable state sees
        the same operation sequence on every run.
     2. Honest fallback — a pool of width 1 never spawns and [map] is
        exactly [Array.map], so [--domains 1] runs byte-identical to the
        pre-pool code path.
     3. No surprises — exceptions raised by the work function are caught
        per index and re-raised (the lowest-index one) in the caller, so
        a failure in a worker domain surfaces exactly where the
        sequential code would have raised it.

   Workers park on a condition variable between batches; [map] is a
   synchronous rendezvous (submit strides, run stride 0 inline, await the
   rest).  The pool is single-owner: one thread calls [map]/[shutdown].
   See docs/CONCURRENCY.md for the full model. *)

type worker = {
  lock : Mutex.t;
  cond : Condition.t;
  mutable job : (unit -> unit) option;
  mutable idle : bool; (* no job in flight; flipped by the worker itself *)
  mutable stop : bool;
}

type t = {
  width : int;
  workers : worker array; (* width - 1 entries; the caller is worker 0 *)
  handles : unit Domain.t array;
  mutable closed : bool;
}

let new_worker () =
  { lock = Mutex.create ();
    cond = Condition.create ();
    job = None;
    idle = true;
    stop = false }

let rec worker_loop (w : worker) =
  Mutex.lock w.lock;
  while w.job = None && not w.stop do
    Condition.wait w.cond w.lock
  done;
  let job = w.job in
  let stop = w.stop in
  Mutex.unlock w.lock;
  match job with
  | Some f ->
    (* [f] is a stride runner built by [map]; it traps its own exceptions
       per index, so it never raises here. *)
    f ();
    Mutex.lock w.lock;
    w.job <- None;
    w.idle <- true;
    Condition.broadcast w.cond;
    Mutex.unlock w.lock;
    worker_loop w
  | None -> if not stop then worker_loop w

let create ~domains =
  if domains < 1 then
    invalid_arg (Fmt.str "Morph.Pool.create: domains %d < 1" domains);
  let workers = Array.init (domains - 1) (fun _ -> new_worker ()) in
  let handles =
    Array.map (fun w -> Domain.spawn (fun () -> worker_loop w)) workers
  in
  { width = domains; workers; handles; closed = false }

let width t = t.width

let submit (w : worker) f =
  Mutex.lock w.lock;
  w.job <- Some f;
  w.idle <- false;
  Condition.broadcast w.cond;
  Mutex.unlock w.lock

let await (w : worker) =
  Mutex.lock w.lock;
  while not w.idle do
    Condition.wait w.cond w.lock
  done;
  Mutex.unlock w.lock

let map (t : t) (f : 'a -> 'b) (xs : 'a array) : 'b array =
  if t.closed then invalid_arg "Morph.Pool.map: pool is shut down";
  let n = Array.length xs in
  if t.width = 1 || n <= 1 then Array.map f xs
  else begin
    let out : 'b option array = Array.make n None in
    let errs : exn option array = Array.make n None in
    let run_stride k () =
      let i = ref k in
      while !i < n do
        (match f xs.(!i) with
         | y -> out.(!i) <- Some y
         | exception e -> errs.(!i) <- Some e);
        i := !i + t.width
      done
    in
    (* Only strides that have at least one index get dispatched. *)
    let live = min t.width n in
    for k = 1 to live - 1 do
      submit t.workers.(k - 1) (run_stride k)
    done;
    run_stride 0 ();
    for k = 1 to live - 1 do
      await t.workers.(k - 1)
    done;
    Array.iter (function Some e -> raise e | None -> ()) errs;
    Array.map (function Some y -> y | None -> assert false) out
  end

let shutdown t =
  if not t.closed then begin
    t.closed <- true;
    Array.iter
      (fun w ->
         Mutex.lock w.lock;
         w.stop <- true;
         Condition.broadcast w.cond;
         Mutex.unlock w.lock)
      t.workers;
    Array.iter Domain.join t.handles
  end

let with_pool ~domains f =
  let t = create ~domains in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
