(* Retro-transformations: the Ecode snippets a writer associates with a new
   format so that receivers can convert messages into older formats
   (paper, Figure 1).  This module compiles transformation specs shipped in
   format meta-data into executable converters. *)

open Pbio

type spec = Meta.xform_spec = {
  source : Ptype.record option;
  target : Ptype.record;
  code : string;
}

type compiled = {
  source : Ptype.record;
  spec : spec;
  run : Value.t -> Value.t;
}

(* Engine choice exists for the A1 ablation; production paths use the
   compiled (code-generated) engine. *)
type engine =
  | Compiled
  | Interpreted

let compile ?(engine = Compiled) ~(source : Ptype.record) (spec : spec) :
  (compiled, Err.t) result =
  let build =
    match engine with
    | Compiled -> Ecode.compile_xform
    | Interpreted -> Ecode.interpret_xform
  in
  match build ~src:source ~dst:spec.target spec.code with
  | Error e ->
    Error
      (`Xform
        (Fmt.str "transformation %s -> %s: %s"
           source.Ptype.rname spec.target.Ptype.rname e))
  | Ok run -> Ok { source; spec; run }

(* Convenience constructor for writer-side registration. *)
let spec ?source ~(target : Ptype.record) (code : string) : spec =
  { source; target; code }

(* Validate a spec without keeping the compiled form: writers call this at
   registration time so broken transformation code fails fast, at the
   sender, not at some receiver. *)
let check ~(source : Ptype.record) (spec : spec) : (unit, Err.t) result =
  match compile ~source spec with
  | Ok _ -> Ok ()
  | Error _ as e -> e
