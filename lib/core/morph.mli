(** Message Morphing — public facade.

    The paper's primary contribution: combine out-of-band binary meta-data
    (PBIO format descriptions, {!Pbio}) with dynamically generated
    transformation code ({!Ecode}) so receivers convert incoming messages
    of unknown formats into formats they understand, with no negotiation
    and no application changes.

    Typical use:

    {[
      (* writer side: describe the new format and how to roll it back *)
      let meta =
        Morph.meta v2_format
          ~xforms:[ Morph.xform ~target:v1_format retro_code ]
      in
      (* reader side *)
      let recv = Morph.Receiver.create () in
      Morph.Receiver.register recv v1_format my_v1_handler;
      ignore (Morph.Receiver.deliver recv meta incoming_value)
    ]} *)

module Breaker : module type of Breaker
module Diff : module type of Diff
module Pool : module type of Pool
module Maxmatch : module type of Maxmatch
module Weighted : module type of Weighted
module Xform : module type of Xform
module Receiver : module type of Receiver

open Pbio

(** A retro-transformation spec: Ecode converting [source] (default: the
    base format of the meta it is attached to) into [target].  Specs with
    explicit sources form chains (Figure 1 lineages). *)
val xform : ?source:Ptype.record -> target:Ptype.record -> string -> Meta.xform_spec

(** Build format meta-data, validating the body and every transformation
    target.  Raises [Invalid_argument] on ill-formed formats. *)
val meta : ?xforms:Meta.xform_spec list -> Ptype.record -> Meta.format_meta

(** Compile every attached transformation once, so a broken snippet is
    reported at registration — at the writer, not at some receiver.
    Failures are [Error (`Xform _)]. *)
val check_meta : Meta.format_meta -> (unit, Err.t) result

(** One-shot morphing without a standing receiver: convert [value] of the
    meta's body format into [target] using the attached transformations
    and structural conversion, if the thresholds allow it.  No acceptable
    morph path is [Error (`No_match _)]. *)
val morph_to :
  ?thresholds:Maxmatch.thresholds ->
  ?engine:Xform.engine ->
  Meta.format_meta ->
  target:Ptype.record ->
  Value.t ->
  (Value.t, Err.t) result
