(* Per-pipeline circuit breaker.

   Generalises the receiver quarantine of PR 2: a transformation (or, in the
   gateway, a whole tenant) that keeps failing trips the breaker after a
   threshold of consecutive failures.  With no cooldown the breaker stays
   open for good — exactly the old quarantine.  With a cooldown the breaker
   re-admits a probe delivery after [cooldown_s] of simulated time; a probe
   success closes the circuit, a probe failure re-opens it for another
   cooldown. *)

type state = Closed | Open | Half_open

let pp_state ppf = function
  | Closed -> Fmt.string ppf "closed"
  | Open -> Fmt.string ppf "open"
  | Half_open -> Fmt.string ppf "half-open"

let state_level = function Closed -> 0 | Half_open -> 1 | Open -> 2

type t = {
  threshold : int;
  cooldown_s : float option;
  on_trip : (t -> unit) option;
  mutable state : state;
  mutable consecutive_failures : int;
  mutable opened_at : float;
  mutable trips : int;
  mutable probes : int;
}

let create ?(threshold = 3) ?cooldown_s ?on_trip () =
  if threshold < 1 then invalid_arg "Breaker.create: threshold must be >= 1";
  (match cooldown_s with
   | Some c when not (c > 0.) -> invalid_arg "Breaker.create: cooldown_s must be > 0"
   | _ -> ());
  {
    threshold;
    cooldown_s;
    on_trip;
    state = Closed;
    consecutive_failures = 0;
    opened_at = neg_infinity;
    trips = 0;
    probes = 0;
  }

let state t = t.state
let threshold t = t.threshold
let consecutive_failures t = t.consecutive_failures
let trips t = t.trips
let probes t = t.probes

let retry_at t =
  match t.state, t.cooldown_s with
  | Open, Some c -> Some (t.opened_at +. c)
  | _ -> None

(* Deliveries admitted while [Half_open] are probes: the next recorded
   outcome decides whether the circuit closes again or re-opens. *)
let admit t ~now =
  match t.state with
  | Closed -> true
  | Half_open ->
    t.probes <- t.probes + 1;
    true
  | Open ->
    (match t.cooldown_s with
     | None -> false
     | Some c when now -. t.opened_at >= c ->
       t.state <- Half_open;
       t.probes <- t.probes + 1;
       true
     | Some _ -> false)

(* Returns [true] when this success closed a half-open circuit (a probe
   recovery), [false] on an ordinary success. *)
let record_success t =
  let recovered = t.state = Half_open in
  t.consecutive_failures <- 0;
  t.state <- Closed;
  recovered

(* Returns [true] when this failure tripped the breaker open (either the
   threshold was reached, or a half-open probe failed). *)
let record_failure t ~now =
  t.consecutive_failures <- t.consecutive_failures + 1;
  let trip () =
    t.state <- Open;
    t.opened_at <- now;
    t.trips <- t.trips + 1;
    (match t.on_trip with Some f -> f t | None -> ());
    true
  in
  match t.state with
  | Half_open -> trip ()
  | Closed when t.consecutive_failures >= t.threshold -> trip ()
  | Closed | Open -> false

let reset t =
  t.state <- Closed;
  t.consecutive_failures <- 0;
  t.opened_at <- neg_infinity
