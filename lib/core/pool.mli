(** A fixed-width domain pool for sharded delivery.

    [map] partitions array indices across OCaml 5 domains by {e stride}:
    with a pool of width [w], worker [k] handles every index [i] with
    [i mod w = k], in increasing order.  The partition is a pure function
    of the array length and the pool width — never of scheduling — so
    per-shard mutable state sees the same operation sequence on every
    run, and a width-1 pool degenerates to [Array.map] without spawning
    anything ([--domains 1] reproduces goldens byte-for-byte).

    The pool is single-owner: one thread calls {!map} and {!shutdown}.
    Work functions run on other domains — give them domain-safe state
    (their own shard, a {!Pbio.Ctx.t}, an [Obs] registry merged at scrape
    time).  See docs/CONCURRENCY.md. *)

type t

(** [create ~domains] spawns [domains - 1] parked worker domains; the
    caller acts as worker 0 during {!map}.  [domains = 1] spawns nothing.
    Raises [Invalid_argument] when [domains < 1]. *)
val create : domains:int -> t

(** Pool width as given to {!create}. *)
val width : t -> int

(** [map t f xs] applies [f] to every element, strided across the pool,
    and returns results in index order.  Exceptions from [f] are trapped
    per index; after all strides finish, the lowest-index one is
    re-raised in the caller.  Raises [Invalid_argument] after
    {!shutdown}. *)
val map : t -> ('a -> 'b) -> 'a array -> 'b array

(** Stop and join all workers.  Idempotent. *)
val shutdown : t -> unit

(** [with_pool ~domains f] brackets [f] between {!create} and
    {!shutdown}. *)
val with_pool : domains:int -> (t -> 'a) -> 'a
