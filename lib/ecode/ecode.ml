(* Ecode: the C-subset transformation language of the paper (Section 3.2,
   Figure 5), with both a closure compiler (the dynamic-code-generation
   analogue used in production paths) and a naive interpreter (the ablation
   baseline).

   The conventional entry point for message morphing is {!compile_xform}:
   the snippet sees the incoming message as [new] and the outgoing message
   as [old], exactly as in the paper's Figure 5 code. *)

module Token = Token
module Lexer = Lexer
module Ast = Ast
module Parser = Parser
module Typecheck = Typecheck
module Compile = Compile
module Interp = Interp
module Pp = Pp

open Pbio

type program = Ast.prog

(* --- observability ------------------------------------------------------- *)

type metrics = {
  mon : bool;
  mreg : Obs.t;
  compiles : Obs.Counter.h;
  compile_errors : Obs.Counter.h;
  compile_ns : Obs.Histogram.h;
  stmt_count : Obs.Histogram.h;
}

let make_metrics reg =
  {
    mon = Obs.enabled reg;
    mreg = reg;
    compiles = Obs.Counter.make reg "ecode.compiles";
    compile_errors = Obs.Counter.make reg "ecode.compile_errors";
    compile_ns = Obs.Histogram.make reg ~unit_:"ns" "ecode.compile_ns";
    stmt_count =
      Obs.Histogram.make reg
        ~buckets:[ 1.; 2.; 4.; 8.; 16.; 32.; 64.; 128. ]
        "ecode.stmt_count";
  }

let metrics = ref (make_metrics Obs.null)
let set_metrics reg = metrics := make_metrics reg

(* Statement count of a program: a proxy for the length of the generated
   closure chain, reported per compile. *)
let rec stmt_size (s : Ast.stmt) : int =
  match s.Ast.s with
  | Ast.Decl _ | Expr _ | Return _ | Break | Continue | Empty -> 1
  | If (_, a, b) ->
    1 + stmt_size a + (match b with Some b -> stmt_size b | None -> 0)
  | For (init, _, _, body) ->
    1 + (match init with Some s -> stmt_size s | None -> 0) + stmt_size body
  | While (_, body) | Do_while (body, _) -> 1 + stmt_size body
  | Switch (_, arms) ->
    List.fold_left
      (fun acc (a : Ast.switch_arm) ->
         List.fold_left (fun acc s -> acc + stmt_size s) acc a.Ast.body)
      1 arms
  | Block body -> List.fold_left (fun acc s -> acc + stmt_size s) 1 body

let program_size (p : program) : int =
  let block acc body = List.fold_left (fun acc s -> acc + stmt_size s) acc body in
  block (List.fold_left (fun acc (f : Ast.fundef) -> block acc f.Ast.fbody) 0 p.Ast.funs)
    p.Ast.main

let parse (src : string) : (program, string) result = Parser.parse_program src

let typecheck ~(params : (string * Ptype.t) list) (prog : program) :
  (Typecheck.tprog, string) result =
  Typecheck.check ~params prog

(* Parse, check and compile a program against named parameters.  The
   resulting function takes the parameter values in declaration order. *)
let compile ~(params : (string * Ptype.t) list) (src : string) :
  (Value.t array -> unit, string) result =
  let m = !metrics in
  let t0 = if m.mon then Obs.now m.mreg else 0. in
  let result =
    match parse src with
    | Error _ as e -> e
    | Ok prog ->
      (match typecheck ~params prog with
       | Error _ as e -> e
       | Ok tprog ->
         if m.mon then
           Obs.Histogram.observe m.stmt_count (float_of_int (program_size prog));
         Ok (Compile.compile tprog))
  in
  if m.mon then begin
    (match result with
     | Ok _ ->
       Obs.Counter.incr m.compiles;
       Obs.Histogram.observe m.compile_ns (Obs.now m.mreg -. t0)
     | Error _ -> Obs.Counter.incr m.compile_errors)
  end;
  result

(* The paper's transformation shape: convert a [src]-format message into a
   fresh [dst]-format message.  Inside the snippet, [new] is the incoming
   message and [old] the outgoing one. *)
let compile_xform ~(src : Ptype.record) ~(dst : Ptype.record) (code : string) :
  (Value.t -> Value.t, string) result =
  let params = [ ("new", Ptype.Record src); ("old", Ptype.Record dst) ] in
  match compile ~params code with
  | Error _ as e -> e
  | Ok run ->
    Ok
      (fun input ->
         let output = Value.default_record dst in
         run [| input; output |];
         Value.sync_lengths dst output;
         output)

(* Interpreted variant of {!compile_xform}; same semantics, no code
   generation.  Used by the A1 ablation benchmark. *)
let interpret_xform ~(src : Ptype.record) ~(dst : Ptype.record) (code : string) :
  (Value.t -> Value.t, string) result =
  ignore src;
  match parse code with
  | Error _ as e -> e
  | Ok prog ->
    Ok
      (fun input ->
         let output = Value.default_record dst in
         Interp.run ~params:[ ("new", input); ("old", output) ] prog;
         Value.sync_lengths dst output;
         output)
