(** Ecode: the C-subset transformation language of the paper (Section 3.2,
    Figure 5), with both a closure compiler (the dynamic-code-generation
    analogue used in production paths) and a naive interpreter (the A1
    ablation baseline).

    The conventional entry point for message morphing is {!compile_xform}:
    the snippet sees the incoming message as [new] and the outgoing message
    as [old], exactly as in the paper's Figure 5 code. *)

module Token : module type of Token
module Lexer : module type of Lexer
module Ast : module type of Ast
module Parser : module type of Parser
module Typecheck : module type of Typecheck
module Compile : module type of Compile
module Interp : module type of Interp
module Pp : module type of Pp

open Pbio

type program = Ast.prog

val parse : string -> (program, string) result

(** Point the compiler's instrumentation at a registry: [ecode.compiles] /
    [ecode.compile_errors] counters, [ecode.compile_ns] latency and
    [ecode.stmt_count] (statement count per compiled program — a proxy for
    the generated closure-chain length).  Defaults to [Obs.null]. *)
val set_metrics : Obs.t -> unit

val typecheck :
  params:(string * Ptype.t) list -> program -> (Typecheck.tprog, string) result

(** Parse, check and compile a program against named parameters.  The
    resulting function takes the parameter values in declaration order. *)
val compile :
  params:(string * Ptype.t) list -> string -> (Value.t array -> unit, string) result

(** The paper's transformation shape: convert a [src]-format message into a
    fresh [dst]-format message.  Inside the snippet, [new] is the incoming
    message and [old] the outgoing one (initialised to the target format's
    defaults; variable-array length fields are re-synchronised after the
    snippet runs). *)
val compile_xform :
  src:Ptype.record -> dst:Ptype.record -> string -> (Value.t -> Value.t, string) result

(** Interpreted variant of {!compile_xform}; same semantics, no code
    generation. *)
val interpret_xform :
  src:Ptype.record -> dst:Ptype.record -> string -> (Value.t -> Value.t, string) result
