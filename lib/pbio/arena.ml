(* Bump-style record-cell pools, recycled per delivery.

   Pooling is keyed by plan site: every record-assembly point in a
   compiled lazy plan gets a process-unique site id, and one (arena,
   site) pair always describes the same record shape — so the pooled
   [Value.entry array] (whose immutable [name] fields were written on
   first use) can be handed back verbatim, with only the mutable [v]
   fields rewritten by the decode.  Sites inside arrays are not pooled
   (N elements would need N arrays); the codec passes those requests to
   [null].

   Site ids are small dense ints ([Codec.fresh_site] is a counter), so
   the pool is a plain array indexed by site — [entries] is an array
   load and a generation compare, no hashing.  Slots handed out in the
   current generation are kept on a touched list so [recycle] walks
   exactly the slots the ending delivery used, not the whole pool:
   both hot-path operations stay a few nanoseconds, which matters
   because they run once per delivered message.

   No locking anywhere: an arena is owned by one domain.  [Pbio.Ctx]
   hands out arenas through Domain.DLS, which enforces that by
   construction. *)

type slot = {
  names : string array;
  cells : Value.entry array;
  mutable gen : int; (* generation of the last [entries] hand-out *)
}

type t = {
  enabled : bool;
  dbg : bool;
  mutable slots : slot option array; (* indexed by site id *)
  mutable touched : slot array; (* first [ntouched]: handed out this gen *)
  mutable ntouched : int;
  mutable nslots : int;
  mutable generation : int;
  mutable bytes_recycled : int;
}

(* Fills unused [touched] positions so the hot path never wraps slots in
   an option (one [Some] per delivery adds up at messaging rates). *)
let dummy_slot = { names = [||]; cells = [||]; gen = max_int }

let poison = Value.String "<arena-recycled>"

let env_debug =
  match Sys.getenv_opt "PBIO_ARENA_DEBUG" with
  | Some v when String.trim v <> "" && String.trim v <> "0" -> true
  | Some _ | None -> false

let create ?(debug = env_debug) () =
  { enabled = true; dbg = debug; slots = Array.make 16 None;
    touched = Array.make 8 dummy_slot; ntouched = 0; nslots = 0;
    generation = 0; bytes_recycled = 0 }

let null =
  { enabled = false; dbg = false; slots = [||]; touched = [||]; ntouched = 0;
    nslots = 0; generation = 0; bytes_recycled = 0 }

(* Words held by one skeleton: the array spine (1 header + n slots) plus
   n entry records (1 header + 2 fields each).  An estimate for the
   [arena.bytes_recycled] gauge, not an accounting invariant. *)
let skeleton_bytes n = (1 + n + (n * 3)) * (Sys.word_size / 8)

let fresh_cells (names : string array) : Value.entry array =
  Array.map (fun name -> { Value.name; v = Value.Int 0 }) names

let grow_to (a : slot option array) (n : int) : slot option array =
  let b = Array.make n None in
  Array.blit a 0 b 0 (Array.length a);
  b

let touch t s =
  if t.ntouched >= Array.length t.touched then begin
    let b = Array.make (max 8 (2 * Array.length t.touched)) dummy_slot in
    Array.blit t.touched 0 b 0 (Array.length t.touched);
    t.touched <- b
  end;
  t.touched.(t.ntouched) <- s;
  t.ntouched <- t.ntouched + 1

let entries t ~site (names : string array) : Value.entry array =
  if not t.enabled then fresh_cells names
  else begin
    if site >= Array.length t.slots then
      t.slots <- grow_to t.slots (max (site + 1) (2 * Array.length t.slots));
    match Array.unsafe_get t.slots site with
    | Some s when s.gen < t.generation ->
      (* recycled and shape-stable: reuse the skeleton *)
      s.gen <- t.generation;
      touch t s;
      s.cells
    | Some _ ->
      (* same delivery asked twice for one site (re-entrant decode of a
         rejected-then-retried message): hand out a fresh array rather
         than alias the live one *)
      fresh_cells names
    | None ->
      let cells = fresh_cells names in
      let s = { names; cells; gen = t.generation } in
      t.slots.(site) <- Some s;
      t.nslots <- t.nslots + 1;
      touch t s;
      cells
  end

(* [bytes_recycled] is accounted here, over the slots the ending
   delivery actually used (the touched list — freshly created slots
   included), NOT at [entries] pool-hit time: a hit-based count depends
   on whether the arena was warm, which varies with how receivers shard
   across domains, while the recycled count is a pure function of the
   delivery itself. *)
let recycle t =
  if t.enabled then begin
    for i = 0 to t.ntouched - 1 do
      let s = Array.unsafe_get t.touched i in
      t.bytes_recycled <-
        t.bytes_recycled + skeleton_bytes (Array.length s.names);
      if t.dbg then
        Array.iter (fun (e : Value.entry) -> e.Value.v <- poison) s.cells;
      Array.unsafe_set t.touched i dummy_slot
    done;
    t.ntouched <- 0;
    t.generation <- t.generation + 1
  end

let generation t = t.generation

let check t gen =
  if t.generation <> gen then
    invalid_arg
      (Printf.sprintf
         "Arena.check: generation %d has been recycled (now %d); the borrowed \
          value may alias a later delivery"
         gen t.generation)

let debug t = t.dbg
let bytes_recycled t = t.bytes_recycled
let live_sites t = t.nslots
