(* Bigarray-backed immutable byte slices: the zero-copy carrier for
   received frames.  A slice is a (buffer, off, len) view; sub-slicing
   shares the buffer.  The multi-byte readers are assembled from byte
   loads because Bigarray.Array1 exposes none — measured, the assembled
   form is within noise of String.get_int32_* on the decode hot path,
   and the bytes were never copied into a string to begin with. *)

type buffer =
  (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = {
  buf : buffer;
  off : int;
  len : int;
}

let length s = s.len

let of_buffer ?(off = 0) ?len buf =
  let blen = Bigarray.Array1.dim buf in
  let len = match len with Some l -> l | None -> blen - off in
  if off < 0 || len < 0 || off + len > blen then
    invalid_arg
      (Printf.sprintf "Slice.of_buffer: window (%d, %d) outside buffer of %d"
         off len blen);
  { buf; off; len }

let of_string (s : string) : t =
  let n = String.length s in
  let buf = Bigarray.Array1.create Bigarray.char Bigarray.c_layout n in
  for i = 0 to n - 1 do
    Bigarray.Array1.unsafe_set buf i (String.unsafe_get s i)
  done;
  { buf; off = 0; len = n }

let of_bytes (b : bytes) : t = of_string (Bytes.unsafe_to_string b)

let sub s ~pos ~len =
  if pos < 0 || len < 0 || pos + len > s.len then
    invalid_arg
      (Printf.sprintf "Slice.sub: window (%d, %d) outside slice of %d" pos len
         s.len);
  { buf = s.buf; off = s.off + pos; len }

let get s i =
  if i < 0 || i >= s.len then
    invalid_arg (Printf.sprintf "Slice.get: index %d outside slice of %d" i s.len);
  Bigarray.Array1.unsafe_get s.buf (s.off + i)

let unsafe_get s i = Bigarray.Array1.unsafe_get s.buf (s.off + i)

let sub_string s ~pos ~len =
  if pos < 0 || len < 0 || pos + len > s.len then
    invalid_arg
      (Printf.sprintf "Slice.sub_string: window (%d, %d) outside slice of %d"
         pos len s.len);
  let b = Bytes.create len in
  let base = s.off + pos in
  for i = 0 to len - 1 do
    Bytes.unsafe_set b i (Bigarray.Array1.unsafe_get s.buf (base + i))
  done;
  Bytes.unsafe_to_string b

let to_string s = sub_string s ~pos:0 ~len:s.len

(* Sign-extend a 32-bit quantity held in the low bits of an int. *)
let sext32 x = (x lsl (Sys.int_size - 32)) asr (Sys.int_size - 32)

(* The multi-byte readers bind the buffer and resolved base once so the
   byte loads index a common local instead of refetching the slice
   fields per byte — the per-element length read in the lazy skip loop
   runs one of these per wire string.  Written as straight-line lets:
   an inner helper closure here is a real per-call allocation without
   cross-module inlining, which would put a heap word on every length
   read of the zero-copy path. *)
let i32_le s p =
  let buf = s.buf in
  let base = s.off + p in
  let b0 = Char.code (Bigarray.Array1.unsafe_get buf base) in
  let b1 = Char.code (Bigarray.Array1.unsafe_get buf (base + 1)) in
  let b2 = Char.code (Bigarray.Array1.unsafe_get buf (base + 2)) in
  let b3 = Char.code (Bigarray.Array1.unsafe_get buf (base + 3)) in
  sext32 (b0 lor (b1 lsl 8) lor (b2 lsl 16) lor (b3 lsl 24))

let i32_be s p =
  let buf = s.buf in
  let base = s.off + p in
  let b0 = Char.code (Bigarray.Array1.unsafe_get buf base) in
  let b1 = Char.code (Bigarray.Array1.unsafe_get buf (base + 1)) in
  let b2 = Char.code (Bigarray.Array1.unsafe_get buf (base + 2)) in
  let b3 = Char.code (Bigarray.Array1.unsafe_get buf (base + 3)) in
  sext32 (b3 lor (b2 lsl 8) lor (b1 lsl 16) lor (b0 lsl 24))

(* 64-bit reads assemble two 32-bit halves as untagged ints and join
   them in one Int64 expression, so the only Int64 values are the final
   (caller-visible) one and no per-byte boxing happens. *)
let i64_le s p =
  let buf = s.buf in
  let base = s.off + p in
  let b0 = Char.code (Bigarray.Array1.unsafe_get buf base) in
  let b1 = Char.code (Bigarray.Array1.unsafe_get buf (base + 1)) in
  let b2 = Char.code (Bigarray.Array1.unsafe_get buf (base + 2)) in
  let b3 = Char.code (Bigarray.Array1.unsafe_get buf (base + 3)) in
  let b4 = Char.code (Bigarray.Array1.unsafe_get buf (base + 4)) in
  let b5 = Char.code (Bigarray.Array1.unsafe_get buf (base + 5)) in
  let b6 = Char.code (Bigarray.Array1.unsafe_get buf (base + 6)) in
  let b7 = Char.code (Bigarray.Array1.unsafe_get buf (base + 7)) in
  let lo = b0 lor (b1 lsl 8) lor (b2 lsl 16) lor (b3 lsl 24) in
  let hi = b4 lor (b5 lsl 8) lor (b6 lsl 16) lor (b7 lsl 24) in
  Int64.logor (Int64.of_int lo) (Int64.shift_left (Int64.of_int hi) 32)

let i64_be s p =
  let buf = s.buf in
  let base = s.off + p in
  let b0 = Char.code (Bigarray.Array1.unsafe_get buf base) in
  let b1 = Char.code (Bigarray.Array1.unsafe_get buf (base + 1)) in
  let b2 = Char.code (Bigarray.Array1.unsafe_get buf (base + 2)) in
  let b3 = Char.code (Bigarray.Array1.unsafe_get buf (base + 3)) in
  let b4 = Char.code (Bigarray.Array1.unsafe_get buf (base + 4)) in
  let b5 = Char.code (Bigarray.Array1.unsafe_get buf (base + 5)) in
  let b6 = Char.code (Bigarray.Array1.unsafe_get buf (base + 6)) in
  let b7 = Char.code (Bigarray.Array1.unsafe_get buf (base + 7)) in
  let hi = b3 lor (b2 lsl 8) lor (b1 lsl 16) lor (b0 lsl 24) in
  let lo = b7 lor (b6 lsl 8) lor (b5 lsl 16) lor (b4 lsl 24) in
  Int64.logor (Int64.of_int lo) (Int64.shift_left (Int64.of_int hi) 32)

let equal a b =
  a.len = b.len
  &&
  let rec go i = i >= a.len || (unsafe_get a i = unsafe_get b i && go (i + 1)) in
  go 0

let pp ppf s =
  Format.fprintf ppf "slice[%d]" s.len
