(** Binary wire codec for PBIO records.

    Message layout: a 16-byte header (magic, byte order, version, sender-
    local format id, payload length) followed by the fields in declaration
    order — 4-byte ints/unsigneds/enums, 8-byte IEEE floats, 1-byte chars
    and booleans, length-prefixed strings, records inline, array elements
    inline.  A variable array's count is the value of its (earlier) length
    field; no count travels on the wire.

    The sender writes in its native byte order (PBIO's "native data
    representation"); the receiver byte-swaps only when orders differ.

    Decoding is result-typed: wire input is untrusted, so every decoding
    entry point returns [('a, Err.t) result].  Encoding raises
    {!Encode_error} — the value and format come from the sender itself,
    and a mismatch there is a programming error, not an input error.

    Every call runs a compiled plan from {!Codec}'s bounded per-format
    cache, built on first use for the format/endianness pair (counted in
    [codec.plan_compiles]); the original per-field interpreter survives
    as {!Codec.Interp}, the differential-testing reference. *)

type endian = Codec.endian =
  | Little
  | Big

exception Encode_error of string
(** The same exception as {!Codec.Encode_error}. *)

exception Decode_error of string
(** The same exception as {!Codec.Decode_error}; raised only by the
    deprecated [*_exn] decoders. *)

(** Header size in bytes (16 — the paper reports PBIO adds <30 bytes). *)
val header_size : int

val magic : string
val wire_version : int

type header = Codec.header = {
  endian : endian;
  format_id : int;
  payload_len : int;
}

(** {1 Encoding} *)

(** [encode ~endian ~format_id fmt v] is the complete wire message (header
    plus payload).  Raises {!Encode_error} if [v] does not conform to
    [fmt], an int exceeds 32 bits, a fixed array has the wrong length, or a
    variable array disagrees with its length field (call
    {!Value.sync_lengths} first). *)
val encode : ?endian:endian -> format_id:int -> Ptype.record -> Value.t -> string

(** Payload only, without the header. *)
val encode_payload : ?endian:endian -> Ptype.record -> Value.t -> string

(** {1 Decoding}

    Total on any input: a decoding failure is [Error (`Decode _)], and a
    type error surfaced while interpreting a hostile format description is
    [Error (`Type _)]; corrupted length fields are rejected before any
    large allocation. *)

(** Parse and check the 16-byte header. *)
val read_header : string -> (header, Err.t) result

(** [decode fmt message] decodes a complete wire message against [fmt]
    (which must be the {e writer's} format — conversion to the reader's
    format is the morphing layer's job). *)
val decode : Ptype.record -> string -> (Value.t, Err.t) result

(** Decode a bare payload (no header) in the given byte order. *)
val decode_payload :
  ?endian:endian -> Ptype.record -> string -> (Value.t, Err.t) result

(** Minimum wire footprint of one value of a type, used to validate length
    fields. *)
val min_wire_size : Ptype.t -> int

(** {1 Observability}

    [set_metrics reg] points the codec's instrumentation at [reg]:
    [wire.encodes]/[wire.decodes]/[wire.decode_errors] counters,
    [wire.bytes_out]/[wire.bytes_in] byte counters and
    [wire.encode_ns]/[wire.decode_ns] latency histograms.  Defaults to
    {!Obs.null}, which skips the clock reads entirely. *)
val set_metrics : Obs.t -> unit

(** {1 Deprecated compatibility wrappers} *)

val read_header_exn : string -> header
[@@deprecated "use read_header"]
(** Raises {!Decode_error}. *)

val decode_exn : Ptype.record -> string -> Value.t
[@@deprecated "use decode"]
(** Raises {!Decode_error}. *)

val decode_payload_exn : ?endian:endian -> Ptype.record -> string -> Value.t
[@@deprecated "use decode_payload"]
(** Raises {!Decode_error}. *)

val read_header_result : string -> (header, string) result
[@@deprecated "use read_header"]

val decode_result : Ptype.record -> string -> (Value.t, string) result
[@@deprecated "use decode"]

val decode_payload_result :
  ?endian:endian -> Ptype.record -> string -> (Value.t, string) result
[@@deprecated "use decode_payload"]
