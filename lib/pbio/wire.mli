(** Binary wire codec for PBIO records.

    Message layout: a 16-byte header (magic, byte order, version, sender-
    local format id, payload length) followed by the fields in declaration
    order — 4-byte ints/unsigneds/enums, 8-byte IEEE floats, 1-byte chars
    and booleans, length-prefixed strings, records inline, array elements
    inline.  A variable array's count is the value of its (earlier) length
    field; no count travels on the wire.

    The sender writes in its native byte order (PBIO's "native data
    representation"); the receiver byte-swaps only when orders differ.

    Decoding is result-typed: wire input is untrusted, so every decoding
    entry point returns [('a, Err.t) result].  Encoding raises
    {!Encode_error} — the value and format come from the sender itself,
    and a mismatch there is a programming error, not an input error.

    Every call runs a compiled plan from {!Codec}'s bounded per-format
    cache, built on first use for the format/endianness pair (counted in
    [codec.plan_compiles]); the original per-field interpreter survives
    as {!Codec.Interp}, the differential-testing reference. *)

type endian = Codec.endian =
  | Little
  | Big

exception Encode_error of string
(** The same exception as {!Codec.Encode_error}. *)

exception Decode_error of string
(** The same exception as {!Codec.Decode_error}; never escapes the
    result-typed decoders below. *)

(** Header size in bytes (16 — the paper reports PBIO adds <30 bytes). *)
val header_size : int

val magic : string
val wire_version : int

type header = Codec.header = {
  endian : endian;
  format_id : int;
  payload_len : int;
}

(** {1 Encoding}

    Every entry point takes an optional [?ctx] {!Ctx.t}: plans are then
    pulled from that context's cache and metrics recorded into its
    registry.  Omitting it uses the process-default context
    ({!Ctx.default} — the pre-context global cache and whatever
    {!set_metrics} installed). *)

(** [encode ~endian ~format_id fmt v] is the complete wire message (header
    plus payload).  Raises {!Encode_error} if [v] does not conform to
    [fmt], an int exceeds 32 bits, a fixed array has the wrong length, or a
    variable array disagrees with its length field (call
    {!Value.sync_lengths} first). *)
val encode :
  ?ctx:Ctx.t -> ?endian:endian -> format_id:int -> Ptype.record -> Value.t -> string

(** Payload only, without the header. *)
val encode_payload : ?ctx:Ctx.t -> ?endian:endian -> Ptype.record -> Value.t -> string

(** {1 Decoding}

    Total on any input: a decoding failure is [Error (`Decode _)], and a
    type error surfaced while interpreting a hostile format description is
    [Error (`Type _)]; corrupted length fields are rejected before any
    large allocation. *)

(** Parse and check the 16-byte header. *)
val read_header : string -> (header, Err.t) result

(** [decode fmt message] decodes a complete wire message against [fmt]
    (which must be the {e writer's} format — conversion to the reader's
    format is the morphing layer's job). *)
val decode : ?ctx:Ctx.t -> Ptype.record -> string -> (Value.t, Err.t) result

(** Decode a bare payload (no header) in the given byte order. *)
val decode_payload :
  ?ctx:Ctx.t -> ?endian:endian -> Ptype.record -> string -> (Value.t, Err.t) result

(** Minimum wire footprint of one value of a type, used to validate length
    fields. *)
val min_wire_size : Ptype.t -> int

(** {1 Observability}

    [set_metrics reg] points the codec's instrumentation at [reg]:
    [wire.encodes]/[wire.decodes]/[wire.decode_errors] counters,
    [wire.bytes_out]/[wire.bytes_in] byte counters and
    [wire.encode_ns]/[wire.decode_ns] latency histograms.  Defaults to
    {!Obs.null}, which skips the clock reads entirely.  Deprecated: pass
    [?ctx] with a metrics registry instead; the global registration
    applies to every caller in the process and is not domain-safe. *)
val set_metrics : Obs.t -> unit
  [@@deprecated "pass ?ctx (Pbio.Ctx.create ~metrics) instead: the \
                 process-global metrics registration is not domain-safe"]
