(** Compiled wire-codec plans: the wire-layer half of substitution S1.

    {!compile_encode}, {!compile_decode} and {!compile_morph} walk a
    format description once and emit flat plans of specialised closures —
    per-endian primitive readers/writers resolved at compile time, enum
    value<->case hash tables instead of [List.find_opt], length-field
    references bound to slot indices, [min_wire_size] precomputed per
    array element, and a reusable scratch buffer sized from
    {!Sizeof.static_wire_bound}.  Per message, only direct calls remain.

    {!compile_morph} additionally fuses wire decoding of the sender's
    format into construction of the {e receiver's} value layout: dropped
    source fields are skipped on the wire (with identical bounds and enum
    validity checks), matched fields decode straight into the target slot
    through the {!Convert} coercion when types differ, and missing target
    fields take defaults — one pass, no intermediate source-format value.
    Fused plans are observationally identical to decode-then-convert; the
    morphcheck "codec" oracle enforces this differentially.

    [Wire] re-exports the message-level API as thin wrappers over the
    {!encoder_for}/{!decoder_for} plan cache; [Morph.Receiver] caches
    {!morpher_for} plans alongside its match pipelines.  The interpretive
    cores live in {!Interp} as the reference implementation. *)

type endian = Little | Big

exception Encode_error of string
exception Decode_error of string

val header_size : int
val magic : string
val wire_version : int

type header = {
  endian : endian;
  format_id : int;
  payload_len : int;
}

(** Parse and validate the 16-byte message header.
    @raise Decode_error on any malformation. *)
val read_header : string -> header

(** Minimum wire footprint of one value of a type; used to reject
    corrupted length fields before allocating element arrays. *)
val min_wire_size : Ptype.t -> int

(** {1 Compiled plans} *)

type encoder
type decoder
type morpher

(** Compile an encode plan for one format at one endianness.  Plans are
    immutable closure trees safe to share across domains; the scratch
    buffer encodes render through is domain-local.  Counted in
    [codec.plan_compiles]. *)
val compile_encode : endian:endian -> Ptype.record -> encoder

val compile_decode : endian:endian -> Ptype.record -> decoder

(** Compile a fused decode->morph plan: bytes of [from_] in, value laid
    out as [into] out. *)
val compile_morph : endian:endian -> from_:Ptype.record -> into:Ptype.record -> morpher

(** [encode_payload enc v] renders the payload bytes (no header).
    @raise Encode_error when [v] does not conform to the plan's format
    @raise Value.Type_error on malformed values. *)
val encode_payload : encoder -> Value.t -> string

(** Full message: header + payload. *)
val encode_message : encoder -> format_id:int -> Value.t -> string

(** [decode_payload dec ?pos data] decodes from [pos] (default 0) to the
    end of [data]; trailing bytes are an error.
    @raise Decode_error on malformed or truncated input. *)
val decode_payload : decoder -> ?pos:int -> string -> Value.t

(** Fused decode->morph over a payload, same contract as
    {!decode_payload}. *)
val morph_payload : morpher -> ?pos:int -> string -> Value.t

val encoder_format : encoder -> Ptype.record
val encoder_endian : encoder -> endian
val decoder_format : decoder -> Ptype.record
val morpher_formats : morpher -> Ptype.record * Ptype.record

(** {1 Lazy plans over zero-copy slices}

    The allocation-floor counterpart of the fused plans: input arrives as
    a {!Slice.t} (a Bigarray window the transport never copied into a
    string) and [Value] cells materialise only where a plan actually
    needs one.  Error behaviour is bit-compatible with the eager plans —
    identical [Decode_error] strings at identical malformations; the
    morphcheck "lazy" oracles enforce both value equality and Ok/Error
    agreement differentially.  See docs/PERFORMANCE.md for when lazy
    wins (dropped-field-heavy morphs, partial reads) and when it loses
    (dense matched payloads read in full). *)

(** Parse and validate the message header from a slice; same checks and
    error strings as {!read_header}. *)
val read_header_s : Slice.t -> header

(** {2 Lazy decode: extent index + on-demand fields}

    {!compile_decode_lazy} compiles a one-pass scan that indexes each
    top-level field's wire extent — reusing the coalesced fixed-span
    skip logic, so the scan validates exactly what a full decode
    validates (bounds, enum membership, length sanity) — and decodes
    only the length-referenced integer slots.  {!lview_field} then
    materialises single fields on demand, memoised per view. *)

type ldecoder
type lview

val compile_decode_lazy : endian:endian -> Ptype.record -> ldecoder

(** Scan [s] from [pos] (default 0); trailing bytes are an error, as in
    {!decode_payload}.  The returned view borrows [s].
    @raise Decode_error on malformed or truncated input. *)
val decode_lazy : ldecoder -> ?pos:int -> Slice.t -> lview

val lview_fields : lview -> int
val lview_format : lview -> Ptype.record

(** Materialise field [i] (declaration order), memoised.  Strings are
    copied out of the slice; the result does not borrow the buffer.
    Raises [Invalid_argument] when [i] is out of range.
    @raise Decode_error if the field's bytes are malformed in a way the
    scan pass does not check (it checks everything, so in practice this
    only re-raises on adversarial aliasing). *)
val lview_field : lview -> int -> Value.t

(** Force every field: equals the eager {!decode_payload} result. *)
val lview_value : lview -> Value.t

(** {2 Fused lazy morph: slices in, arena-pooled values out} *)

type lmorpher

(** Compile a fused decode->morph plan over slices: dropped source
    fields are skipped on the wire (never materialised), matched fields
    decode straight into the target slot, and record skeletons come from
    the {!Arena} passed at run time. *)
val compile_morph_lazy :
  endian:endian -> from_:Ptype.record -> into:Ptype.record -> lmorpher

(** Run a lazy morph plan.  [arena] (default {!Arena.null}, which pools
    nothing) supplies the record skeletons; a value built over a real
    arena is valid until that arena's next [Arena.recycle].  Same
    trailing-bytes contract as {!morph_payload}.
    @raise Decode_error on malformed or truncated input. *)
val lmorph_payload : lmorpher -> ?arena:Arena.t -> ?pos:int -> Slice.t -> Value.t

val lmorpher_formats : lmorpher -> Ptype.record * Ptype.record

(** Static per-message (materialised, skipped) field-site counts for the
    [codec.lazy_fields_materialized] / [codec.lazy_fields_skipped]
    counters — compile-time constants (array elements count once), so
    receivers tick counters without threading state through the plan. *)
val lmorpher_stats : lmorpher -> int * int

(** Process-unique arena site ids; one per record-assembly point of a
    compiled lazy plan.  Exposed for tests and external plan builders. *)
val fresh_site : unit -> int

(** {1 Plan caches}

    A {!cache} is the codec component of a [Pbio.Ctx.t] capability:
    bounded (LRU-evicted at the cap — 512 entries per table kind by
    default — so hostile shipped meta-data cannot grow it without limit
    and a burst of fresh formats cannot flush the hot ones), keyed by
    {!Ptype.hash_record} with structural equality, and safe to share
    across domains — the table is lock-striped, and a domain-local
    1-slot physical-identity memo in front keeps the per-message fast
    path lock-free.  Hits tick [codec.plan_cache_hits] on the cache's
    own metrics registry; evictions tick [codec.plan_evictions];
    compiles tick the process-wide [codec.plan_compiles] (see
    {!set_metrics}). *)

type cache

(** [create_cache ()] builds an independent plan cache.  [metrics]
    (default {!Obs.null}) receives the hit/eviction counters — when the
    cache is shared across domains, pass {!Obs.null} or accept racy
    (lossy but memory-safe) counts.  [max_plans] (default 512) bounds
    each table kind; [stripes] (default 8, rounded up to a power of
    two) sets lock granularity.  Raises [Invalid_argument] when either
    is below 1. *)
val create_cache :
  ?metrics:Obs.t -> ?max_plans:int -> ?stripes:int -> unit -> cache

(** The process-default cache, used whenever no explicit [?cache] (or
    enclosing [Pbio.Ctx.t]) is given — the compatibility shim for the
    pre-context global cache. *)
val default_cache : cache

val encoder_for : ?cache:cache -> endian:endian -> Ptype.record -> encoder
val decoder_for : ?cache:cache -> endian:endian -> Ptype.record -> decoder

(** Fused morph plan from [cache] (an optional [?cache] would be
    unerasable here — every other argument is labelled). *)
val morpher_in :
  cache -> endian:endian -> from_:Ptype.record -> into:Ptype.record -> morpher

(** = [morpher_in default_cache]. *)
val morpher_for :
  endian:endian -> from_:Ptype.record -> into:Ptype.record -> morpher

(** Lazy-plan variants, cached in the same striped tables (each format
    slot carries eager and lazy plans side by side). *)
val ldecoder_for : ?cache:cache -> endian:endian -> Ptype.record -> ldecoder

val lmorpher_in :
  cache -> endian:endian -> from_:Ptype.record -> into:Ptype.record -> lmorpher

(** Drop every cached plan (tests and long-lived fuzz drivers) and
    invalidate every domain's 1-slot memo over [cache]. *)
val reset_plans : ?cache:cache -> unit -> unit

(** Cap on cached plan entries (applies separately to the format-plan and
    morph-plan tables).  Raises [Invalid_argument] below 1.  The gateway
    lowers this to bound broker-side memory (docs/GATEWAY.md). *)
val set_max_plans : ?cache:cache -> int -> unit

val max_plans : ?cache:cache -> unit -> int

(** Live entries across both plan tables. *)
val plan_cache_size : ?cache:cache -> unit -> int

(** {1 Interpretive reference implementation}

    The original per-field interpreter, kept as the differential-testing
    baseline.  Same error behaviour as the compiled plans. *)
module Interp : sig
  val encode_payload : endian:endian -> Ptype.record -> Value.t -> string
  val encode_message : endian:endian -> format_id:int -> Ptype.record -> Value.t -> string
  val decode_payload : endian:endian -> ?pos:int -> Ptype.record -> string -> Value.t
end

(** {1 Primitives shared with [Wire]} *)

type cursor = {
  data : string;
  mutable pos : int;
  limit : int;
}

val need : cursor -> int -> unit
val read_i32 : endian -> cursor -> int
val read_u32 : endian -> cursor -> int
val read_f64 : endian -> cursor -> float
val read_byte : cursor -> char
val read_bytes : cursor -> int -> string
val add_i32 : endian -> Buffer.t -> int -> unit
val add_u32 : endian -> Buffer.t -> int -> unit
val add_f64 : endian -> Buffer.t -> float -> unit

val encode_error : ('a, Format.formatter, unit, 'b) format4 -> 'a
val decode_error : ('a, Format.formatter, unit, 'b) format4 -> 'a

(** Point the codec's process-wide instrumentation ([codec.plan_compiles]
    counter, [codec.compile_ns] histogram) {e and} {!default_cache}'s
    hit/eviction counters at a registry.  Defaults to {!Obs.null}.
    Deprecated: build a [Pbio.Ctx.t] (or {!create_cache} [~metrics])
    instead; the global registration is not domain-safe. *)
val set_metrics : Obs.t -> unit
  [@@deprecated "use Pbio.Ctx.create ~metrics (or Codec.create_cache \
                 ~metrics): the process-global metrics registration is \
                 not domain-safe"]
