(** Per-receiver record-cell pools recycled per delivery.

    The lazy decode path materialises records into [Value.entry array]
    skeletons.  Those skeletons are shape-stable per compiled plan site,
    so an arena keeps one skeleton per site and hands the same array
    back delivery after delivery — the steady-state decode of a hot
    format allocates no record spines at all.

    Ownership discipline (docs/PERFORMANCE.md):

    - An arena is {e single-domain}: it has no lock.  Obtain one through
      [Pbio.Ctx.arena], which hands each domain its own
      ([Domain.DLS]-backed) instance — [--domains N] sharding then keeps
      arenas domain-local with zero sharing by construction.
    - Values built from pooled cells are valid until the next
      {!recycle} on the same arena.  A handler that retains a delivered
      value past its delivery must [Value.copy] it first.
    - Generation tags make escapes loud in debug builds: create the
      arena with [~debug:true] (or set [PBIO_ARENA_DEBUG=1]) and every
      {!recycle} poisons the pooled cells, so a retained cell reads back
      as the sentinel {!poison} instead of silently aliasing the next
      message.  {!generation}/{!check} support explicit guard tokens. *)

type t

(** [create ()] makes an empty arena.  [debug] (default: set when the
    [PBIO_ARENA_DEBUG] environment variable is a non-empty value other
    than ["0"]) enables poison-on-recycle escape detection. *)
val create : ?debug:bool -> unit -> t

(** The disabled arena: every request allocates fresh, {!recycle} is a
    no-op.  Lazy plans run over [null] when no arena is wired in. *)
val null : t

(** [entries a ~site names] returns an entry array whose names are
    [names], pooled per [site] (a plan-global site id from
    [Codec.fresh_site]).  Within one (arena, site) the same array is
    returned until {!recycle}; entry values are stale and must all be
    overwritten by the caller.  Never pooled on [null] arenas. *)
val entries : t -> site:int -> string array -> Value.entry array

(** End of delivery: bump the generation, making every pooled skeleton
    reusable.  In debug mode, poisons pooled cell values first. *)
val recycle : t -> unit

(** The value poisoned cells read back as in debug mode. *)
val poison : Value.t

(** Monotone recycle count: capture it next to a borrowed value as a
    guard token. *)
val generation : t -> int

(** [check a gen] raises [Invalid_argument] when the arena has been
    recycled since [gen] was captured — the borrowed value may alias a
    later delivery. *)
val check : t -> int -> unit

val debug : t -> bool

(** Cumulative skeleton bytes returned to the pool by {!recycle} (a
    words-based estimate over the slots each ending delivery used),
    feeding the [arena.bytes_recycled] gauge.  Accounted at recycle
    rather than at pool-hit time so the number is a pure function of
    the deliveries — independent of whether the arena was warm, and
    therefore of how receivers shard across domains. *)
val bytes_recycled : t -> int

(** Pooled skeletons currently held. *)
val live_sites : t -> int
