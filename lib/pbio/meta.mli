(** Out-of-band format meta-data.

    A self-describing binary encoding of format descriptions, shipped once
    per (connection, format) before the first record of that format.
    Following the paper, the meta-data for a format may also carry a set of
    {e retro-transformations}: for each, the full description of the target
    format plus the Ecode source text that converts a message into it
    (Figure 1).  The code travels as an opaque string at this layer; the
    morphing layer parses and compiles it. *)

(** One transformation on offer: source (defaulting to the base format),
    target format and Ecode source text.  Inside the snippet the incoming
    message is bound to [new] and the outgoing message to [old], as in the
    paper's Figure 5.  Explicit sources let a format ship a {e chain} of
    transformations (Figure 1: Rev 2.0 -> Rev 1.0 -> Rev 0.0); receivers
    compose the hops. *)
type xform_spec = {
  source : Ptype.record option;
  target : Ptype.record;
  code : string;
}

type format_meta = {
  body : Ptype.record;
  xforms : xform_spec list;
}

(** Meta-data with no transformations attached. *)
val plain : Ptype.record -> format_meta

exception Meta_error of string

(** Serialise to the out-of-band wire form. *)
val encode : format_meta -> string

(** Parse meta-data received from a peer. *)
val decode : string -> (format_meta, Err.t) result

(** Structural identity of a full meta block (body {e and}
    transformations); receiver caches key on this. *)
val equal : format_meta -> format_meta -> bool

val hash : format_meta -> int
