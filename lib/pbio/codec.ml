(* Compiled wire-codec plans.

   The interpretive codec (kept below as [Interp], the reference
   implementation) pattern-matches on [Ptype.t] for every field of every
   message.  This module is the wire-layer half of the paper's "dynamic
   code generation" substitution (DESIGN.md, S1): [compile_encode],
   [compile_decode] and [compile_morph] walk a format description once and
   emit a flat plan of specialised closures — per-endian primitive
   readers/writers, enum value<->case lookup tables instead of
   [List.find_opt], length-field references resolved to slot indices,
   [min_wire_size] precomputed per array element, and a reusable scratch
   buffer sized from [Sizeof.static_wire_bound].  Per message only direct
   calls remain.

   [compile_morph] goes one step further and fuses wire decoding of the
   sender's format into construction of the *receiver's* value layout:
   source fields the target drops are skipped on the wire (never
   materialised), matched fields decode straight into the target slot
   (through the [Convert] coercion when the types differ), and missing
   target fields take their defaults — one pass, no intermediate
   source-format value tree.  The fused plan is observationally identical
   to decode-then-convert; the morphcheck "codec" oracle enforces this
   differentially.

   Hostile input discipline is inherited from the interpreter: every
   length is bounds-checked before allocation, unknown enum values reject
   the message (even when the field is skipped), and decoding failures
   raise [Decode_error], which the [Wire] wrappers turn into [Error]. *)

type endian = Little | Big

exception Encode_error of string
exception Decode_error of string

let encode_error fmt = Fmt.kstr (fun s -> raise (Encode_error s)) fmt
let decode_error fmt = Fmt.kstr (fun s -> raise (Decode_error s)) fmt

let header_size = 16
let magic = "PBIO"
let wire_version = 1

type header = {
  endian : endian;
  format_id : int;
  payload_len : int;
}

(* --- primitive writers ------------------------------------------------- *)

let int32_min = -0x8000_0000
let int32_max = 0x7fff_ffff
let uint32_max = 0xffff_ffff

let add_i32 endian buf n =
  if n < int32_min || n > int32_max then encode_error "int %d out of 32-bit range" n;
  let x = Int32.of_int n in
  match endian with
  | Little -> Buffer.add_int32_le buf x
  | Big -> Buffer.add_int32_be buf x

let add_u32 endian buf n =
  if n < 0 || n > uint32_max then encode_error "unsigned %d out of 32-bit range" n;
  let x = Int32.of_int (if n > int32_max then n - (uint32_max + 1) else n) in
  match endian with
  | Little -> Buffer.add_int32_le buf x
  | Big -> Buffer.add_int32_be buf x

let add_f64 endian buf x =
  let bits = Int64.bits_of_float x in
  match endian with
  | Little -> Buffer.add_int64_le buf bits
  | Big -> Buffer.add_int64_be buf bits

let set_u32 endian b off n =
  if n < 0 || n > uint32_max then encode_error "unsigned %d out of 32-bit range" n;
  let x = Int32.of_int (if n > int32_max then n - (uint32_max + 1) else n) in
  match endian with
  | Little -> Bytes.set_int32_le b off x
  | Big -> Bytes.set_int32_be b off x

(* Specialised writers for compiled plans: the endian branch is resolved
   when the plan is built, not per value. *)

let w_i32 = function
  | Little ->
    fun buf n ->
      if n < int32_min || n > int32_max then encode_error "int %d out of 32-bit range" n;
      Buffer.add_int32_le buf (Int32.of_int n)
  | Big ->
    fun buf n ->
      if n < int32_min || n > int32_max then encode_error "int %d out of 32-bit range" n;
      Buffer.add_int32_be buf (Int32.of_int n)

let w_u32 = function
  | Little ->
    fun buf n ->
      if n < 0 || n > uint32_max then encode_error "unsigned %d out of 32-bit range" n;
      Buffer.add_int32_le buf
        (Int32.of_int (if n > int32_max then n - (uint32_max + 1) else n))
  | Big ->
    fun buf n ->
      if n < 0 || n > uint32_max then encode_error "unsigned %d out of 32-bit range" n;
      Buffer.add_int32_be buf
        (Int32.of_int (if n > int32_max then n - (uint32_max + 1) else n))

let w_f64 = function
  | Little -> fun buf x -> Buffer.add_int64_le buf (Int64.bits_of_float x)
  | Big -> fun buf x -> Buffer.add_int64_be buf (Int64.bits_of_float x)

(* --- primitive readers ------------------------------------------------- *)

type cursor = {
  data : string;
  mutable pos : int;
  limit : int;
}

let need cur n =
  if cur.pos + n > cur.limit then
    decode_error "truncated message: need %d bytes at offset %d (limit %d)" n cur.pos cur.limit

let read_i32 endian cur =
  need cur 4;
  let x =
    match endian with
    | Little -> String.get_int32_le cur.data cur.pos
    | Big -> String.get_int32_be cur.data cur.pos
  in
  cur.pos <- cur.pos + 4;
  Int32.to_int x

let read_u32 endian cur =
  let n = read_i32 endian cur in
  if n < 0 then n + uint32_max + 1 else n

let read_f64 endian cur =
  need cur 8;
  let bits =
    match endian with
    | Little -> String.get_int64_le cur.data cur.pos
    | Big -> String.get_int64_be cur.data cur.pos
  in
  cur.pos <- cur.pos + 8;
  Int64.float_of_bits bits

let read_byte cur =
  need cur 1;
  let c = cur.data.[cur.pos] in
  cur.pos <- cur.pos + 1;
  c

let read_bytes cur n =
  need cur n;
  let s = String.sub cur.data cur.pos n in
  cur.pos <- cur.pos + n;
  s

(* Endian-resolved readers for compiled plans. *)

let reader_i32 = function
  | Little ->
    fun cur ->
      need cur 4;
      let x = String.get_int32_le cur.data cur.pos in
      cur.pos <- cur.pos + 4;
      Int32.to_int x
  | Big ->
    fun cur ->
      need cur 4;
      let x = String.get_int32_be cur.data cur.pos in
      cur.pos <- cur.pos + 4;
      Int32.to_int x

let reader_u32 endian =
  let rd = reader_i32 endian in
  fun cur ->
    let n = rd cur in
    if n < 0 then n + uint32_max + 1 else n


(* --- enum lookup tables -------------------------------------------------- *)

(* Value -> case-name tables, memoised per enum description so the
   interpretive path shares them with compiled plans.  First binding wins,
   matching the [List.find_opt] the tables replace.  The memo is bounded:
   fuzzed meta-data can mint unlimited distinct enum types.  It is
   domain-local (a plain Hashtbl mutated on the decode hot path cannot be
   shared); each table itself is fully built before it is returned, so
   tables captured inside compiled plans are immutable and safe to share
   across domains. *)

let enum_tables_key :
  (Ptype.enum, (int, string) Hashtbl.t) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 16)

let enum_table (e : Ptype.enum) : (int, string) Hashtbl.t =
  let enum_tables = Domain.DLS.get enum_tables_key in
  match Hashtbl.find_opt enum_tables e with
  | Some t -> t
  | None ->
    if Hashtbl.length enum_tables >= 256 then Hashtbl.reset enum_tables;
    let t = Hashtbl.create (2 * List.length e.cases) in
    List.iter (fun (c, n) -> if not (Hashtbl.mem t n) then Hashtbl.add t n c) e.cases;
    Hashtbl.replace enum_tables e t;
    t

(* --- sizes ---------------------------------------------------------------- *)

(* Minimum wire footprint of one value of a type: used to reject corrupted
   length fields before allocating huge element arrays. *)
let rec min_wire_size (ty : Ptype.t) : int =
  match ty with
  | Ptype.Basic (Int | Uint | Enum _ | String) -> 4
  | Basic Float -> 8
  | Basic (Char | Bool) -> 1
  | Record r ->
    List.fold_left (fun acc (f : Ptype.field) -> acc + min_wire_size f.ftype) 0 r.fields
  | Array { elem; size = Fixed k } -> max k 0 * min_wire_size elem
  | Array { size = Length_field _; _ } -> 0

(* Per-decode-call memo so the interpretive path computes each element
   type's footprint once per message instead of once per nested array
   occurrence (physical identity is enough: type nodes are shared within
   one format description). *)
let min_wire_size_memo (memo : (Ptype.t * int) list ref) (ty : Ptype.t) : int =
  let rec find = function
    | [] -> None
    | (t, n) :: rest -> if t == ty then Some n else find rest
  in
  match find !memo with
  | Some n -> n
  | None ->
    let n = min_wire_size ty in
    memo := (ty, n) :: !memo;
    n

(* Exact wire span of a type when it is statically fixed, [None] when the
   span depends on the value (strings, variable arrays) or the type can
   reject bytes while being skipped (enums) or reject statically-invalid
   sizes (negative fixed arrays). *)
let rec fixed_span (ty : Ptype.t) : int option =
  match ty with
  | Ptype.Basic (Int | Uint) -> Some 4
  | Basic Float -> Some 8
  | Basic (Char | Bool) -> Some 1
  | Basic (Enum _ | String) -> None
  | Record r ->
    List.fold_left
      (fun acc (f : Ptype.field) ->
         match acc, fixed_span f.ftype with
         | Some a, Some b -> Some (a + b)
         | _ -> None)
      (Some 0) r.fields
  | Array { elem; size = Fixed k } ->
    if k < 0 then None else Option.map (fun m -> k * m) (fixed_span elem)
  | Array { size = Length_field _; _ } -> None

(* --- header ---------------------------------------------------------------- *)

let read_header (data : string) : header =
  if String.length data < header_size then decode_error "message shorter than header";
  if String.sub data 0 4 <> magic then decode_error "bad magic";
  let endian =
    match data.[4] with
    | '\x00' -> Little
    | '\x01' -> Big
    | c -> decode_error "bad endian flag %C" c
  in
  let v = Char.code data.[5] in
  if v <> wire_version then decode_error "unsupported wire version %d" v;
  let cur = { data; pos = 8; limit = String.length data } in
  let format_id = read_u32 endian cur in
  let payload_len = read_u32 endian cur in
  if header_size + payload_len <> String.length data then
    decode_error "payload length %d does not match message size %d"
      payload_len (String.length data - header_size);
  { endian; format_id; payload_len }

(* --- observability ---------------------------------------------------------- *)

type metrics = {
  mon : bool;
  mreg : Obs.t;
  compiles : Obs.Counter.h;
  cache_hits : Obs.Counter.h;
  evictions : Obs.Counter.h;
  compile_ns : Obs.Histogram.h;
}

let make_metrics reg =
  {
    mon = Obs.enabled reg;
    mreg = reg;
    compiles = Obs.Counter.make reg "codec.plan_compiles";
    cache_hits = Obs.Counter.make reg "codec.plan_cache_hits";
    evictions = Obs.Counter.make reg "codec.plan_evictions";
    compile_ns = Obs.Histogram.make reg ~unit_:"ns" "codec.compile_ns";
  }

let metrics = ref (make_metrics Obs.null)

(* Time one plan compilation and tick [codec.plan_compiles]. *)
let timed_compile (f : unit -> 'a) : 'a =
  let m = !metrics in
  if not m.mon then f ()
  else begin
    let t0 = Obs.now m.mreg in
    let p = f () in
    Obs.Counter.incr m.compiles;
    Obs.Histogram.observe m.compile_ns (Obs.now m.mreg -. t0);
    p
  end

(* --- interpretive reference implementation ----------------------------------- *)

module Interp = struct
  let rec encode_type endian buf (ty : Ptype.t) (v : Value.t) : unit =
    match ty, v with
    | Ptype.Basic Int, Value.Int n -> add_i32 endian buf n
    | Basic Uint, Uint n -> add_u32 endian buf n
    | Basic Float, Float x -> add_f64 endian buf x
    | Basic Char, Char c -> Buffer.add_char buf c
    | Basic Bool, Bool b -> Buffer.add_char buf (if b then '\x01' else '\x00')
    | Basic (Enum _), Enum (_, n) -> add_i32 endian buf n
    | Basic String, String s ->
      add_u32 endian buf (String.length s);
      Buffer.add_string buf s
    | Record r, (Record _ as v) -> encode_record endian buf r v
    | Array { elem; size }, (Array _ as v) ->
      let n = Value.array_len v in
      (match size with
       | Fixed k when k <> n -> encode_error "fixed array expects %d elements, value has %d" k n
       | Fixed _ | Length_field _ -> ());
      for i = 0 to n - 1 do
        encode_type endian buf elem (Value.array_get v i)
      done
    | _, _ ->
      encode_error "value %s does not match field type %a"
        (Value.to_string v) Ptype.pp_type ty

  and encode_record endian buf (r : Ptype.record) (v : Value.t) : unit =
    let es = Value.entries v in
    if Array.length es <> List.length r.fields then
      encode_error "record %s: value has %d fields, format declares %d"
        r.rname (Array.length es) (List.length r.fields);
    List.iteri
      (fun i (f : Ptype.field) ->
         let e = es.(i) in
         if e.Value.name <> f.fname then
           encode_error "record %s: field %d is %S in value but %S in format"
             r.rname i e.Value.name f.fname;
         (* Enforce the wire invariant: a variable array's length field holds
            the actual element count, since no count travels on the wire. *)
         (match f.ftype with
          | Array { size = Length_field lf; _ } ->
            let declared = Value.to_int (Value.get_field v lf) in
            let actual = Value.array_len e.Value.v in
            if declared <> actual then
              encode_error
                "record %s: length field %S = %d but array %S has %d elements \
                 (call Value.sync_lengths before encoding)"
                r.rname lf declared f.fname actual
          | _ -> ());
         encode_type endian buf f.ftype e.Value.v)
      r.fields

  let encode_payload ~endian (r : Ptype.record) (v : Value.t) : string =
    let buf = Buffer.create 256 in
    encode_record endian buf r v;
    Buffer.contents buf

  let encode_message ~endian ~format_id (r : Ptype.record) (v : Value.t) : string =
    let payload = encode_payload ~endian r v in
    let buf = Buffer.create (header_size + String.length payload) in
    Buffer.add_string buf magic;
    Buffer.add_char buf (match endian with Little -> '\x00' | Big -> '\x01');
    Buffer.add_char buf (Char.chr wire_version);
    Buffer.add_string buf "\x00\x00";
    add_u32 endian buf format_id;
    add_u32 endian buf (String.length payload);
    Buffer.add_string buf payload;
    Buffer.contents buf

  let rec decode_type endian cur (ty : Ptype.t) ~(length_of : string -> int)
      ~(msize : (Ptype.t * int) list ref) : Value.t =
    match ty with
    | Ptype.Basic Int -> Value.Int (read_i32 endian cur)
    | Basic Uint -> Value.Uint (read_u32 endian cur)
    | Basic Float -> Value.Float (read_f64 endian cur)
    | Basic Char -> Value.Char (read_byte cur)
    | Basic Bool -> Value.Bool (read_byte cur <> '\x00')
    | Basic (Enum e) ->
      let n = read_i32 endian cur in
      (match Hashtbl.find_opt (enum_table e) n with
       | Some case -> Value.Enum (case, n)
       | None -> decode_error "enum %s: unknown value %d" e.ename n)
    | Basic String ->
      let n = read_u32 endian cur in
      if n > cur.limit - cur.pos then decode_error "string length %d exceeds message" n;
      Value.String (read_bytes cur n)
    | Record r -> decode_record_inner endian cur r ~msize
    | Array { elem; size } ->
      (* Both size sources are untrusted here: length fields come off the wire
         and fixed sizes may come from a hostile format description (shipped
         meta-data), so both are bounds-checked before any allocation. *)
      let check_len ~what n =
        if n < 0 then decode_error "negative array length %d for %s" n what;
        let remaining = cur.limit - cur.pos in
        let m = min_wire_size_memo msize elem in
        if (m > 0 && n > remaining / m) || (m = 0 && n > cur.limit) then
          decode_error "array length %d for %s exceeds message size" n what;
        n
      in
      let n =
        match size with
        | Fixed k -> check_len ~what:"fixed-size array" k
        | Length_field name -> check_len ~what:(Printf.sprintf "%S" name) (length_of name)
      in
      let items = Array.init n (fun _ -> decode_type endian cur elem ~length_of ~msize) in
      Value.Array { items; len = n; model = Some (Value.default elem) }

  and decode_record_inner endian cur (r : Ptype.record)
      ~(msize : (Ptype.t * int) list ref) : Value.t =
    let es =
      Array.of_list
        (List.map (fun (f : Ptype.field) -> { Value.name = f.fname; v = Value.Int 0 }) r.fields)
    in
    let length_of name =
      (* Length fields are declared before the arrays that use them (enforced
         by Ptype.validate), so they are already decoded here. *)
      match Value.field_index es name with
      | Some i -> Value.to_int es.(i).Value.v
      | None -> decode_error "record %s: missing length field %S" r.rname name
    in
    List.iteri
      (fun i (f : Ptype.field) ->
         es.(i).Value.v <- decode_type endian cur f.ftype ~length_of ~msize)
      r.fields;
    Value.Record es

  let decode_payload ~endian ?(pos = 0) (r : Ptype.record) (data : string) : Value.t =
    let msize = ref [] in
    let cur = { data; pos; limit = String.length data } in
    let v = decode_record_inner endian cur r ~msize in
    if cur.pos <> cur.limit then
      decode_error "trailing garbage: %d bytes left after record %s"
        (cur.limit - cur.pos) r.rname;
    v
end

(* --- compiled encode plans ----------------------------------------------------- *)

type encoder = {
  efmt : Ptype.record;
  eendian : endian;
  erun : Buffer.t -> Value.t -> unit;
}

(* Scratch buffer reused between messages: the plan never runs user
   code, so the buffer cannot be re-entered while an encode is in
   flight.  It is domain-local rather than per-encoder so one compiled
   encoder value can be shared across domains — every other encoder
   field is immutable. *)
let scratch_key = Domain.DLS.new_key (fun () -> Buffer.create 4096)

let rec comp_encode_type endian (ty : Ptype.t) : Buffer.t -> Value.t -> unit =
  let mismatch v =
    encode_error "value %s does not match field type %a" (Value.to_string v) Ptype.pp_type ty
  in
  match ty with
  | Ptype.Basic Int ->
    let w = w_i32 endian in
    (fun buf v -> match v with Value.Int n -> w buf n | v -> mismatch v)
  | Basic Uint ->
    let w = w_u32 endian in
    (fun buf v -> match v with Value.Uint n -> w buf n | v -> mismatch v)
  | Basic Float ->
    let w = w_f64 endian in
    (fun buf v -> match v with Value.Float x -> w buf x | v -> mismatch v)
  | Basic Char ->
    (fun buf v -> match v with Value.Char c -> Buffer.add_char buf c | v -> mismatch v)
  | Basic Bool ->
    (fun buf v ->
       match v with
       | Value.Bool b -> Buffer.add_char buf (if b then '\x01' else '\x00')
       | v -> mismatch v)
  | Basic (Enum _) ->
    let w = w_i32 endian in
    (fun buf v -> match v with Value.Enum (_, n) -> w buf n | v -> mismatch v)
  | Basic String ->
    let w = w_u32 endian in
    (fun buf v ->
       match v with
       | Value.String s ->
         w buf (String.length s);
         Buffer.add_string buf s
       | v -> mismatch v)
  | Record r -> comp_encode_record endian r
  | Array { elem; size } ->
    let we = comp_encode_type endian elem in
    (match size with
     | Fixed k ->
       fun buf v ->
         (match v with
          | Value.Array d ->
            if k <> d.Value.len then
              encode_error "fixed array expects %d elements, value has %d" k d.Value.len;
            for i = 0 to d.Value.len - 1 do we buf d.Value.items.(i) done
          | v -> mismatch v)
     | Length_field _ ->
       fun buf v ->
         (match v with
          | Value.Array d -> for i = 0 to d.Value.len - 1 do we buf d.Value.items.(i) done
          | v -> mismatch v))

and comp_encode_record endian (r : Ptype.record) : Buffer.t -> Value.t -> unit =
  let fields = Array.of_list r.fields in
  let nf = Array.length fields in
  let first_index name =
    let rec go i =
      if i >= nf then None
      else if fields.(i).Ptype.fname = name then Some i
      else go (i + 1)
    in
    go 0
  in
  let steps =
    Array.map
      (fun (f : Ptype.field) ->
         let w = comp_encode_type endian f.ftype in
         let lcheck =
           match f.ftype with
           | Ptype.Array { size = Ptype.Length_field lf; _ } -> Some (lf, first_index lf)
           | _ -> None
         in
         (f.fname, lcheck, w))
      fields
  in
  fun buf v ->
    match v with
    | Value.Record es ->
      if Array.length es <> nf then
        encode_error "record %s: value has %d fields, format declares %d"
          r.rname (Array.length es) nf;
      for i = 0 to nf - 1 do
        let name, lcheck, w = steps.(i) in
        let e = es.(i) in
        if e.Value.name <> name then
          encode_error "record %s: field %d is %S in value but %S in format"
            r.rname i e.Value.name name;
        (match lcheck with
         | None -> ()
         | Some (lf, j) ->
           let declared =
             match j with
             | Some j when es.(j).Value.name = lf -> Value.to_int es.(j).Value.v
             | Some _ | None -> Value.to_int (Value.get_field v lf)
           in
           let actual = Value.array_len e.Value.v in
           if declared <> actual then
             encode_error
               "record %s: length field %S = %d but array %S has %d elements \
                (call Value.sync_lengths before encoding)"
               r.rname lf declared name actual);
        w buf e.Value.v
      done
    | v ->
      encode_error "value %s does not match field type %a"
        (Value.to_string v) Ptype.pp_type (Ptype.Record r)

let compile_encode ~endian (r : Ptype.record) : encoder =
  timed_compile (fun () ->
      let erun = comp_encode_record endian r in
      { efmt = r; eendian = endian; erun })

let encode_payload (enc : encoder) (v : Value.t) : string =
  let scratch = Domain.DLS.get scratch_key in
  Buffer.clear scratch;
  enc.erun scratch v;
  Buffer.contents scratch

let encode_message (enc : encoder) ~format_id (v : Value.t) : string =
  let scratch = Domain.DLS.get scratch_key in
  Buffer.clear scratch;
  enc.erun scratch v;
  let plen = Buffer.length scratch in
  let b = Bytes.create (header_size + plen) in
  Bytes.blit_string magic 0 b 0 4;
  Bytes.set b 4 (match enc.eendian with Little -> '\x00' | Big -> '\x01');
  Bytes.set b 5 (Char.chr wire_version);
  Bytes.set b 6 '\x00';
  Bytes.set b 7 '\x00';
  set_u32 enc.eendian b 8 format_id;
  set_u32 enc.eendian b 12 plen;
  Buffer.blit scratch 0 b header_size plen;
  Bytes.unsafe_to_string b

let encoder_format enc = enc.efmt
let encoder_endian enc = enc.eendian

(* --- compiled decode plans ------------------------------------------------------ *)

type decoder = {
  dfmt : Ptype.record;
  drun : cursor -> Value.t;
}

(* One record scope: which fields back length slots.  A slot is assigned to
   every name referenced by a [Length_field] in this scope (arrays nest
   through arrays but not through records — an inner record resolves its
   lengths against its own fields, exactly like the interpreter's
   [length_of]).  Slot k mirrors the first field with that name, matching
   [Value.field_index]'s first-match rule on duplicate names. *)
let record_layout (r : Ptype.record) =
  let fields = Array.of_list r.fields in
  let nf = Array.length fields in
  let rec refs acc (ty : Ptype.t) =
    match ty with
    | Ptype.Basic _ | Record _ -> acc
    | Array { elem; size } ->
      let acc =
        match size with
        | Ptype.Length_field nm -> if List.mem nm acc then acc else nm :: acc
        | Fixed _ -> acc
      in
      refs acc elem
  in
  let referenced =
    Array.fold_left (fun acc (f : Ptype.field) -> refs acc f.ftype) [] fields
  in
  let first_index nm =
    let rec go i =
      if i >= nf then None
      else if fields.(i).Ptype.fname = nm then Some i
      else go (i + 1)
    in
    go 0
  in
  let slots =
    List.mapi (fun k (nm, i) -> (nm, i, k))
      (List.filter_map (fun nm -> Option.map (fun i -> (nm, i)) (first_index nm)) referenced)
  in
  let nslots = List.length slots in
  let slot_for_field i =
    List.find_map (fun (_, j, k) -> if j = i then Some k else None) slots
  in
  let slot_for_name nm =
    List.find_map (fun (n, _, k) -> if n = nm then Some k else None) slots
  in
  (fields, nf, nslots, slot_for_field, slot_for_name, first_index)

(* Resolve a length-field name to a reader over the scope's slot array.
   Slots start as [Int 0], reproducing the interpreter's placeholder
   semantics when a hostile format references a not-yet-decoded field. *)
let lf_of (r : Ptype.record) slot_for_name (nm : string) : Value.t array -> int =
  match slot_for_name nm with
  | Some k -> fun lens -> Value.to_int lens.(k)
  | None -> fun _ -> decode_error "record %s: missing length field %S" r.rname nm

let no_lens : Value.t array = [||]
let vtrue = Value.Bool true
let vfalse = Value.Bool false

(* Step closures inline the primitive read (bounds check, byte extraction,
   cursor advance) rather than calling the shared readers: one fewer
   indirect call per field, which is most of the interpreter's remaining
   per-field overhead once dispatch is gone. *)
let rec comp_decode_type endian (lf : string -> Value.t array -> int) (ty : Ptype.t) :
  cursor -> Value.t array -> Value.t =
  match ty with
  | Ptype.Basic Int ->
    (match endian with
     | Little ->
       fun cur _ ->
         need cur 4;
         let x = String.get_int32_le cur.data cur.pos in
         cur.pos <- cur.pos + 4;
         Value.Int (Int32.to_int x)
     | Big ->
       fun cur _ ->
         need cur 4;
         let x = String.get_int32_be cur.data cur.pos in
         cur.pos <- cur.pos + 4;
         Value.Int (Int32.to_int x))
  | Basic Uint ->
    (match endian with
     | Little ->
       fun cur _ ->
         need cur 4;
         let x = Int32.to_int (String.get_int32_le cur.data cur.pos) in
         cur.pos <- cur.pos + 4;
         Value.Uint (if x < 0 then x + uint32_max + 1 else x)
     | Big ->
       fun cur _ ->
         need cur 4;
         let x = Int32.to_int (String.get_int32_be cur.data cur.pos) in
         cur.pos <- cur.pos + 4;
         Value.Uint (if x < 0 then x + uint32_max + 1 else x))
  | Basic Float ->
    (match endian with
     | Little ->
       fun cur _ ->
         need cur 8;
         let bits = String.get_int64_le cur.data cur.pos in
         cur.pos <- cur.pos + 8;
         Value.Float (Int64.float_of_bits bits)
     | Big ->
       fun cur _ ->
         need cur 8;
         let bits = String.get_int64_be cur.data cur.pos in
         cur.pos <- cur.pos + 8;
         Value.Float (Int64.float_of_bits bits))
  | Basic Char ->
    fun cur _ ->
      need cur 1;
      let c = String.unsafe_get cur.data cur.pos in
      cur.pos <- cur.pos + 1;
      Value.Char c
  | Basic Bool ->
    fun cur _ ->
      need cur 1;
      let c = String.unsafe_get cur.data cur.pos in
      cur.pos <- cur.pos + 1;
      if c <> '\x00' then vtrue else vfalse
  | Basic (Enum e) ->
    let rd = reader_i32 endian in
    let tbl = enum_table e in
    let ename = e.ename in
    fun cur _ ->
      let n = rd cur in
      (match Hashtbl.find_opt tbl n with
       | Some case -> Value.Enum (case, n)
       | None -> decode_error "enum %s: unknown value %d" ename n)
  | Basic String ->
    let rd = reader_i32 endian in
    fun cur _ ->
      let n0 = rd cur in
      let n = if n0 < 0 then n0 + uint32_max + 1 else n0 in
      if n > cur.limit - cur.pos then decode_error "string length %d exceeds message" n;
      let s = String.sub cur.data cur.pos n in
      cur.pos <- cur.pos + n;
      Value.String s
  | Record r ->
    let sub = comp_decode_record endian r in
    fun cur _ -> sub cur
  | Array { elem; size } ->
    let m = min_wire_size elem in
    let edec = comp_decode_type endian lf elem in
    (* the model is shared across every array this plan decodes: growth
       fills copy it ([Value.fill_for]) and equality ignores it *)
    let model = Some (Value.default elem) in
    let getn, what =
      match size with
      | Ptype.Fixed k -> (fun _ -> k), "fixed-size array"
      | Length_field nm -> lf nm, Printf.sprintf "%S" nm
    in
    fun cur lens ->
      let n = getn lens in
      if n < 0 then decode_error "negative array length %d for %s" n what;
      let remaining = cur.limit - cur.pos in
      if (m > 0 && n > remaining / m) || (m = 0 && n > cur.limit) then
        decode_error "array length %d for %s exceeds message size" n what;
      let items = Array.init n (fun _ -> edec cur lens) in
      Value.Array { items; len = n; model }

and comp_decode_record endian (r : Ptype.record) : cursor -> Value.t =
  let fields, nf, nslots, slot_for_field, slot_for_name, _ = record_layout r in
  let lf = lf_of r slot_for_name in
  let names = Array.map (fun (f : Ptype.field) -> f.fname) fields in
  let steps =
    Array.init nf (fun i ->
        let base = comp_decode_type endian lf fields.(i).Ptype.ftype in
        match slot_for_field i with
        | None -> base
        | Some k ->
          fun cur lens ->
            let v = base cur lens in
            lens.(k) <- v;
            v)
  in
  (* Entries are built with their final values (initializing stores, no
     placeholder pass and no write barriers); common small arities get
     straight-line closures.  The lets force wire-order evaluation. *)
  let build : cursor -> Value.t array -> Value.t =
    match steps, names with
    | [| s0 |], [| n0 |] ->
      fun cur lens -> Value.Record [| { Value.name = n0; v = s0 cur lens } |]
    | [| s0; s1 |], [| n0; n1 |] ->
      fun cur lens ->
        let v0 = s0 cur lens in
        let v1 = s1 cur lens in
        Value.Record [| { Value.name = n0; v = v0 }; { Value.name = n1; v = v1 } |]
    | [| s0; s1; s2 |], [| n0; n1; n2 |] ->
      fun cur lens ->
        let v0 = s0 cur lens in
        let v1 = s1 cur lens in
        let v2 = s2 cur lens in
        Value.Record
          [| { Value.name = n0; v = v0 }; { Value.name = n1; v = v1 };
             { Value.name = n2; v = v2 } |]
    | [| s0; s1; s2; s3 |], [| n0; n1; n2; n3 |] ->
      fun cur lens ->
        let v0 = s0 cur lens in
        let v1 = s1 cur lens in
        let v2 = s2 cur lens in
        let v3 = s3 cur lens in
        Value.Record
          [| { Value.name = n0; v = v0 }; { Value.name = n1; v = v1 };
             { Value.name = n2; v = v2 }; { Value.name = n3; v = v3 } |]
    | [| s0; s1; s2; s3; s4 |], [| n0; n1; n2; n3; n4 |] ->
      fun cur lens ->
        let v0 = s0 cur lens in
        let v1 = s1 cur lens in
        let v2 = s2 cur lens in
        let v3 = s3 cur lens in
        let v4 = s4 cur lens in
        Value.Record
          [| { Value.name = n0; v = v0 }; { Value.name = n1; v = v1 };
             { Value.name = n2; v = v2 }; { Value.name = n3; v = v3 };
             { Value.name = n4; v = v4 } |]
    | _ ->
      fun cur lens ->
        let es = Array.init nf (fun i -> { Value.name = names.(i); v = Value.Int 0 }) in
        for i = 0 to nf - 1 do
          es.(i).Value.v <- steps.(i) cur lens
        done;
        Value.Record es
  in
  if nslots = 0 then fun cur -> build cur no_lens
  else fun cur -> build cur (Array.make nslots (Value.Int 0))

(* Skip a value on the wire without materialising it, enforcing the same
   guards as decoding (bounds, enum validity), so a fused plan accepts and
   rejects exactly the messages the staged path does. *)
let rec comp_skip_type endian (lf : string -> Value.t array -> int) (ty : Ptype.t) :
  cursor -> Value.t array -> unit =
  match fixed_span ty with
  | Some k ->
    fun cur _ ->
      need cur k;
      cur.pos <- cur.pos + k
  | None ->
    (match ty with
     | Ptype.Basic (Int | Uint) ->
       fun cur _ ->
         need cur 4;
         cur.pos <- cur.pos + 4
     | Basic Float ->
       fun cur _ ->
         need cur 8;
         cur.pos <- cur.pos + 8
     | Basic (Char | Bool) ->
       fun cur _ ->
         need cur 1;
         cur.pos <- cur.pos + 1
     | Basic (Enum e) ->
       let rd = reader_i32 endian in
       let tbl = enum_table e in
       let ename = e.ename in
       fun cur _ ->
         let n = rd cur in
         if not (Hashtbl.mem tbl n) then decode_error "enum %s: unknown value %d" ename n
     | Basic String ->
       let rd = reader_u32 endian in
       fun cur _ ->
         let n = rd cur in
         if n > cur.limit - cur.pos then decode_error "string length %d exceeds message" n;
         cur.pos <- cur.pos + n
     | Record r ->
       let sub = comp_skip_record endian r in
       fun cur _ -> sub cur
     | Array { elem; size } ->
       let m = min_wire_size elem in
       let espan = fixed_span elem in
       let eskip = comp_skip_type endian lf elem in
       let getn, what =
         match size with
         | Ptype.Fixed k -> (fun _ -> k), "fixed-size array"
         | Length_field nm -> lf nm, Printf.sprintf "%S" nm
       in
       fun cur lens ->
         let n = getn lens in
         if n < 0 then decode_error "negative array length %d for %s" n what;
         let remaining = cur.limit - cur.pos in
         if (m > 0 && n > remaining / m) || (m = 0 && n > cur.limit) then
           decode_error "array length %d for %s exceeds message size" n what;
         (match espan with
          | Some k ->
            need cur (n * k);
            cur.pos <- cur.pos + (n * k)
          | None -> for _ = 1 to n do eskip cur lens done))

and comp_skip_record endian (r : Ptype.record) : cursor -> unit =
  let fields, nf, nslots, slot_for_field, slot_for_name, _ = record_layout r in
  let lf = lf_of r slot_for_name in
  let steps =
    Array.init nf (fun i ->
        match slot_for_field i with
        | Some k ->
          (* a skipped field other arrays size from must still be read *)
          let dec = comp_decode_type endian lf fields.(i).Ptype.ftype in
          fun cur lens -> lens.(k) <- dec cur lens
        | None -> comp_skip_type endian lf fields.(i).Ptype.ftype)
  in
  fun cur ->
    let lens = Array.make nslots (Value.Int 0) in
    for i = 0 to nf - 1 do
      steps.(i) cur lens
    done

let compile_decode ~endian (r : Ptype.record) : decoder =
  timed_compile (fun () -> { dfmt = r; drun = comp_decode_record endian r })

let decode_payload (d : decoder) ?(pos = 0) (data : string) : Value.t =
  let cur = { data; pos; limit = String.length data } in
  let v = d.drun cur in
  if cur.pos <> cur.limit then
    decode_error "trailing garbage: %d bytes left after record %s"
      (cur.limit - cur.pos) d.dfmt.Ptype.rname;
  v

let decoder_format d = d.dfmt

(* --- fused decode->morph plans ---------------------------------------------------- *)

type morpher = {
  mfrom : Ptype.record;
  minto : Ptype.record;
  mrun : cursor -> Value.t;
}

(* Fused type decoder: read a [src]-formatted value off the wire and build
   it directly in the [dst] layout, with no intermediate source-format
   value.  Returns None exactly when [Convert.compile_type] would (the
   shapes are incompatible; the caller then skips the source bytes and
   materialises the target default).  Fusion recurses through records and
   arrays, so e.g. fields dropped from an array element are skipped on the
   wire instead of decoded and discarded. *)
let rec comp_morph_type endian (lf : string -> Value.t array -> int) (src : Ptype.t)
    (dst : Ptype.t) : (cursor -> Value.t array -> Value.t) option =
  if Ptype.equal_type src dst then Some (comp_decode_type endian lf src)
  else
    match src, dst with
    | Ptype.Basic _, Ptype.Basic _ ->
      (match Convert.compile_type src dst with
       | None -> None
       | Some co ->
         let dec = comp_decode_type endian lf src in
         Some (fun cur lens -> co (dec cur lens)))
    | Record r1, Record r2 ->
      let sub = comp_morph_record endian r1 r2 in
      Some (fun cur _ -> sub cur)
    | Array a1, Array a2 ->
      let m = min_wire_size a1.elem in
      (* like [Convert.compile_type]: an inconvertible element becomes a
         copy of the target default, but the source bytes must still be
         consumed (and validated) *)
      let elem =
        match comp_morph_type endian lf a1.elem a2.elem with
        | Some f -> f
        | None ->
          let sk = comp_skip_type endian lf a1.elem in
          let d = Value.default a2.elem in
          fun cur lens ->
            sk cur lens;
            Value.copy d
      in
      let dmodel = Value.default a2.elem in
      let getn, what =
        match a1.size with
        | Ptype.Fixed k -> (fun _ -> k), "fixed-size array"
        | Length_field nm -> lf nm, Printf.sprintf "%S" nm
      in
      let check cur lens =
        let n = getn lens in
        if n < 0 then decode_error "negative array length %d for %s" n what;
        let remaining = cur.limit - cur.pos in
        if (m > 0 && n > remaining / m) || (m = 0 && n > cur.limit) then
          decode_error "array length %d for %s exceeds message size" n what;
        n
      in
      (match a2.size with
       | Ptype.Length_field _ ->
         Some
           (fun cur lens ->
              let n = check cur lens in
              let items = Array.init n (fun _ -> elem cur lens) in
              Value.Array { items; len = n; model = Some dmodel })
       | Fixed k ->
         let eskip = comp_skip_type endian lf a1.elem in
         Some
           (fun cur lens ->
              let n = check cur lens in
              let take = if k < n then k else n in
              let items =
                Array.init k (fun i ->
                    if i < take then elem cur lens else Value.copy dmodel)
              in
              for _ = take + 1 to n do
                eskip cur lens
              done;
              Value.Array { items; len = k; model = Some dmodel }))
    | (Basic _ | Record _ | Array _), _ -> None

and comp_morph_record endian (src : Ptype.record) (dst : Ptype.record) :
  cursor -> Value.t =
  let fields, nf, nslots, slot_for_field, slot_for_name, first_index =
    record_layout src
  in
  let lf = lf_of src slot_for_name in
  let dst_fields = Array.of_list dst.fields in
  let nt = Array.length dst_fields in
  let tnames = Array.map (fun (f : Ptype.field) -> f.fname) dst_fields in
  (* source index -> matched target index (first source occurrence of each
     target name, as in [Convert.compile_record]); injective since target
     names are unique *)
  let target_of = Array.make (max nf 1) (-1) in
  Array.iteri
    (fun j (f : Ptype.field) ->
       match first_index f.fname with
       | Some i -> target_of.(i) <- j
       | None -> ())
    dst_fields;
  (* how each target slot is produced: fused in wire order into [tmp], or
     defaulted at assembly time *)
  let finals =
    Array.init (max nt 1) (fun j ->
        if j < nt then `Default (Convert.field_default dst_fields.(j))
        else `Default (fun () -> Value.Int 0))
  in
  (* [Fskip n] marks a field whose bytes are dropped with a statically
     known span; adjacent ones coalesce into a single bounds check and
     cursor bump (e.g. two bools dropped from an array element cost one
     2-byte skip per element, not two closure calls) *)
  let raw =
    List.init nf (fun i ->
        let sty = fields.(i).Ptype.ftype in
        let j = target_of.(i) in
        if j >= 0 then begin
          let dty = dst_fields.(j).Ptype.ftype in
          match slot_for_field i with
          | Some k ->
            (* length-referenced AND matched: the lens needs the
               source-formed value, so convert it separately like the
               staged path instead of fusing *)
            let dec = comp_decode_type endian lf sty in
            let co =
              if Ptype.equal_type sty dty then Some (fun v -> v)
              else Convert.compile_type sty dty
            in
            (match co with
             | Some co ->
               finals.(j) <- `Tmp;
               `Step
                 (fun cur lens tmp ->
                    let v = dec cur lens in
                    lens.(k) <- v;
                    tmp.(j) <- co v)
             | None -> `Step (fun cur lens _ -> lens.(k) <- dec cur lens))
          | None ->
            (match comp_morph_type endian lf sty dty with
             | Some dec ->
               finals.(j) <- `Tmp;
               `Step (fun cur lens tmp -> tmp.(j) <- dec cur lens)
             | None ->
               (match fixed_span sty with
                | Some n -> `Fskip n
                | None ->
                  let sk = comp_skip_type endian lf sty in
                  `Step (fun cur lens _ -> sk cur lens)))
        end
        else
          match slot_for_field i with
          | Some k ->
            let dec = comp_decode_type endian lf sty in
            `Step (fun cur lens _ -> lens.(k) <- dec cur lens)
          | None ->
            (match fixed_span sty with
             | Some n -> `Fskip n
             | None ->
               let sk = comp_skip_type endian lf sty in
               `Step (fun cur lens _ -> sk cur lens)))
  in
  let rec coalesce = function
    | `Fskip a :: `Fskip b :: rest -> coalesce (`Fskip (a + b) :: rest)
    | `Fskip n :: rest ->
      (fun cur _ _ ->
         need cur n;
         cur.pos <- cur.pos + n)
      :: coalesce rest
    | `Step f :: rest -> f :: coalesce rest
    | [] -> []
  in
  let steps = Array.of_list (coalesce raw) in
  let ns = Array.length steps in
  (* assembly closures resolved now: pull from [tmp] or build the default *)
  let g =
    Array.init (max nt 1) (fun j ->
        match finals.(j) with
        | `Tmp -> fun tmp -> tmp.(j)
        | `Default d -> fun _ -> d ())
  in
  let assemble : Value.t array -> Value.t =
    match g, tnames with
    | [| g0 |], [| n0 |] -> fun tmp -> Value.Record [| { Value.name = n0; v = g0 tmp } |]
    | [| g0; g1 |], [| n0; n1 |] ->
      fun tmp ->
        Value.Record
          [| { Value.name = n0; v = g0 tmp }; { Value.name = n1; v = g1 tmp } |]
    | [| g0; g1; g2 |], [| n0; n1; n2 |] ->
      fun tmp ->
        Value.Record
          [| { Value.name = n0; v = g0 tmp }; { Value.name = n1; v = g1 tmp };
             { Value.name = n2; v = g2 tmp } |]
    | [| g0; g1; g2; g3 |], [| n0; n1; n2; n3 |] ->
      fun tmp ->
        Value.Record
          [| { Value.name = n0; v = g0 tmp }; { Value.name = n1; v = g1 tmp };
             { Value.name = n2; v = g2 tmp }; { Value.name = n3; v = g3 tmp } |]
    | _ ->
      fun tmp -> Value.Record (Array.init nt (fun j -> { Value.name = tnames.(j); v = g.(j) tmp }))
  in
  fun cur ->
    let lens = if nslots = 0 then no_lens else Array.make nslots (Value.Int 0) in
    let tmp = Array.make (max nt 1) (Value.Int 0) in
    for i = 0 to ns - 1 do
      steps.(i) cur lens tmp
    done;
    assemble tmp

let compile_morph ~endian ~(from_ : Ptype.record) ~(into : Ptype.record) : morpher =
  timed_compile (fun () ->
      let body = comp_morph_record endian from_ into in
      let mrun cur =
        let res = body cur in
        (* target length fields matched by name from the source may disagree
           with converted arrays, exactly as in [Convert.compile] *)
        Value.sync_lengths into res;
        res
      in
      { mfrom = from_; minto = into; mrun })

let morph_payload (m : morpher) ?(pos = 0) (data : string) : Value.t =
  let cur = { data; pos; limit = String.length data } in
  let v = m.mrun cur in
  if cur.pos <> cur.limit then
    decode_error "trailing garbage: %d bytes left after record %s"
      (cur.limit - cur.pos) m.mfrom.Ptype.rname;
  v

let morpher_formats m = (m.mfrom, m.minto)

(* --- lazy plans over zero-copy slices ---------------------------------------

   The allocation-floor half of the fused story: the plans below read
   from a [Slice.t] (a Bigarray window the transport never copied into a
   string) and materialise [Value] cells only where the plan actually
   needs one.  Three layers:

   - slice cursor + primitive readers: the [cursor] machinery retargeted
     at [Slice], same bounds discipline, same error strings;
   - [ldecoder]/[lview]: {!compile_decode_lazy} compiles a one-pass scan
     that indexes each top-level field's wire extent (reusing the
     coalesced fixed-span skip logic) and decodes only the length slots;
     {!lview_field} then materialises individual fields on demand,
     memoised — a reader that touches 2 of 40 fields decodes 2 fields;
   - [lmorpher]: {!compile_morph_lazy} is the fused decode->morph plan
     over slices, with record skeletons drawn from an {!Arena} so the
     steady state allocates neither dropped fields nor record spines.

   Error behaviour is bit-compatible with the eager plans (identical
   [decode_error] strings); the morphcheck "lazy" oracles enforce both
   value equality and Ok/Error agreement differentially. *)

type scursor = {
  sdata : Slice.t;
  mutable spos : int;
  slimit : int;
}

let sneed cur n =
  if cur.spos + n > cur.slimit then
    decode_error "truncated message: need %d bytes at offset %d (limit %d)" n
      cur.spos cur.slimit

let sreader_i32 = function
  | Little ->
    fun cur ->
      sneed cur 4;
      let x = Slice.i32_le cur.sdata cur.spos in
      cur.spos <- cur.spos + 4;
      x
  | Big ->
    fun cur ->
      sneed cur 4;
      let x = Slice.i32_be cur.sdata cur.spos in
      cur.spos <- cur.spos + 4;
      x

let sreader_u32 endian =
  let rd = sreader_i32 endian in
  fun cur ->
    let n = rd cur in
    if n < 0 then n + uint32_max + 1 else n

let read_header_s (s : Slice.t) : header =
  if Slice.length s < header_size then decode_error "message shorter than header";
  if Slice.sub_string s ~pos:0 ~len:4 <> magic then decode_error "bad magic";
  let endian =
    match Slice.get s 4 with
    | '\x00' -> Little
    | '\x01' -> Big
    | c -> decode_error "bad endian flag %C" c
  in
  let v = Char.code (Slice.get s 5) in
  if v <> wire_version then decode_error "unsupported wire version %d" v;
  let cur = { sdata = s; spos = 8; slimit = Slice.length s } in
  let rd = sreader_u32 endian in
  let format_id = rd cur in
  let payload_len = rd cur in
  if header_size + payload_len <> Slice.length s then
    decode_error "payload length %d does not match message size %d" payload_len
      (Slice.length s - header_size);
  { endian; format_id; payload_len }

(* Slice analogue of [comp_decode_type]: same step-closure shape, same
   guards, reading through [Slice] instead of [String].  Strings are
   copied out ([Value.String] owns its bytes; nothing in a materialised
   value borrows the slice). *)
let rec comp_sdecode_type endian (lf : string -> Value.t array -> int)
    (ty : Ptype.t) : scursor -> Value.t array -> Value.t =
  match ty with
  | Ptype.Basic Int ->
    (match endian with
     | Little ->
       fun cur _ ->
         sneed cur 4;
         let x = Slice.i32_le cur.sdata cur.spos in
         cur.spos <- cur.spos + 4;
         Value.Int x
     | Big ->
       fun cur _ ->
         sneed cur 4;
         let x = Slice.i32_be cur.sdata cur.spos in
         cur.spos <- cur.spos + 4;
         Value.Int x)
  | Basic Uint ->
    (match endian with
     | Little ->
       fun cur _ ->
         sneed cur 4;
         let x = Slice.i32_le cur.sdata cur.spos in
         cur.spos <- cur.spos + 4;
         Value.Uint (if x < 0 then x + uint32_max + 1 else x)
     | Big ->
       fun cur _ ->
         sneed cur 4;
         let x = Slice.i32_be cur.sdata cur.spos in
         cur.spos <- cur.spos + 4;
         Value.Uint (if x < 0 then x + uint32_max + 1 else x))
  | Basic Float ->
    (match endian with
     | Little ->
       fun cur _ ->
         sneed cur 8;
         let bits = Slice.i64_le cur.sdata cur.spos in
         cur.spos <- cur.spos + 8;
         Value.Float (Int64.float_of_bits bits)
     | Big ->
       fun cur _ ->
         sneed cur 8;
         let bits = Slice.i64_be cur.sdata cur.spos in
         cur.spos <- cur.spos + 8;
         Value.Float (Int64.float_of_bits bits))
  | Basic Char ->
    fun cur _ ->
      sneed cur 1;
      let c = Slice.unsafe_get cur.sdata cur.spos in
      cur.spos <- cur.spos + 1;
      Value.Char c
  | Basic Bool ->
    fun cur _ ->
      sneed cur 1;
      let c = Slice.unsafe_get cur.sdata cur.spos in
      cur.spos <- cur.spos + 1;
      if c <> '\x00' then vtrue else vfalse
  | Basic (Enum e) ->
    let rd = sreader_i32 endian in
    let tbl = enum_table e in
    let ename = e.ename in
    fun cur _ ->
      let n = rd cur in
      (match Hashtbl.find_opt tbl n with
       | Some case -> Value.Enum (case, n)
       | None -> decode_error "enum %s: unknown value %d" ename n)
  | Basic String ->
    let rd = sreader_u32 endian in
    fun cur _ ->
      let n = rd cur in
      if n > cur.slimit - cur.spos then
        decode_error "string length %d exceeds message" n;
      let s = Slice.sub_string cur.sdata ~pos:cur.spos ~len:n in
      cur.spos <- cur.spos + n;
      Value.String s
  | Record r ->
    let sub = comp_sdecode_record endian r in
    fun cur _ -> sub cur
  | Array { elem; size } ->
    let m = min_wire_size elem in
    let edec = comp_sdecode_type endian lf elem in
    let model = Some (Value.default elem) in
    let getn, what =
      match size with
      | Ptype.Fixed k -> (fun _ -> k), "fixed-size array"
      | Length_field nm -> lf nm, Printf.sprintf "%S" nm
    in
    fun cur lens ->
      let n = getn lens in
      if n < 0 then decode_error "negative array length %d for %s" n what;
      let remaining = cur.slimit - cur.spos in
      if (m > 0 && n > remaining / m) || (m = 0 && n > cur.slimit) then
        decode_error "array length %d for %s exceeds message size" n what;
      let items = Array.init n (fun _ -> edec cur lens) in
      Value.Array { items; len = n; model }

and comp_sdecode_record endian (r : Ptype.record) : scursor -> Value.t =
  let fields, nf, nslots, slot_for_field, slot_for_name, _ = record_layout r in
  let lf = lf_of r slot_for_name in
  let names = Array.map (fun (f : Ptype.field) -> f.fname) fields in
  let steps =
    Array.init nf (fun i ->
        let base = comp_sdecode_type endian lf fields.(i).Ptype.ftype in
        match slot_for_field i with
        | None -> base
        | Some k ->
          fun cur lens ->
            let v = base cur lens in
            lens.(k) <- v;
            v)
  in
  fun cur ->
    let lens = if nslots = 0 then no_lens else Array.make nslots (Value.Int 0) in
    let es = Array.init nf (fun i -> { Value.name = names.(i); v = Value.Int 0 }) in
    for i = 0 to nf - 1 do
      es.(i).Value.v <- steps.(i) cur lens
    done;
    Value.Record es

(* Slice analogue of [comp_skip_type]: consume and validate, materialise
   nothing. *)
let rec comp_sskip_type endian (lf : string -> Value.t array -> int)
    (ty : Ptype.t) : scursor -> Value.t array -> unit =
  match fixed_span ty with
  | Some k ->
    fun cur _ ->
      sneed cur k;
      cur.spos <- cur.spos + k
  | None ->
    (match ty with
     | Ptype.Basic (Int | Uint) ->
       fun cur _ ->
         sneed cur 4;
         cur.spos <- cur.spos + 4
     | Basic Float ->
       fun cur _ ->
         sneed cur 8;
         cur.spos <- cur.spos + 8
     | Basic (Char | Bool) ->
       fun cur _ ->
         sneed cur 1;
         cur.spos <- cur.spos + 1
     | Basic (Enum e) ->
       let rd = sreader_i32 endian in
       let tbl = enum_table e in
       let ename = e.ename in
       fun cur _ ->
         let n = rd cur in
         if not (Hashtbl.mem tbl n) then
           decode_error "enum %s: unknown value %d" ename n
     | Basic String ->
       let rd = sreader_u32 endian in
       fun cur _ ->
         let n = rd cur in
         if n > cur.slimit - cur.spos then
           decode_error "string length %d exceeds message" n;
         cur.spos <- cur.spos + n
     | Record r ->
       let sub = comp_sskip_record endian r in
       fun cur _ -> sub cur
     | Array { elem; size } ->
       let m = min_wire_size elem in
       let espan = fixed_span elem in
       let eskip = comp_sskip_type endian lf elem in
       let getn, what =
         match size with
         | Ptype.Fixed k -> (fun _ -> k), "fixed-size array"
         | Length_field nm -> lf nm, Printf.sprintf "%S" nm
       in
       fun cur lens ->
         let n = getn lens in
         if n < 0 then decode_error "negative array length %d for %s" n what;
         let remaining = cur.slimit - cur.spos in
         if (m > 0 && n > remaining / m) || (m = 0 && n > cur.slimit) then
           decode_error "array length %d for %s exceeds message size" n what;
         (match espan with
          | Some k ->
            sneed cur (n * k);
            cur.spos <- cur.spos + (n * k)
          | None -> for _ = 1 to n do eskip cur lens done))

and comp_sskip_record endian (r : Ptype.record) : scursor -> unit =
  let fields, nf, nslots, slot_for_field, slot_for_name, _ = record_layout r in
  let lf = lf_of r slot_for_name in
  (* adjacent fixed-width skipped fields collapse into one span: this
     loop runs per array element on the drop-heavy morphs, so trailing
     scalar runs (ints, bools) must cost one bounds check, not one
     closure call each *)
  let raw =
    List.init nf (fun i ->
        match slot_for_field i with
        | Some k ->
          let dec = comp_sdecode_type endian lf fields.(i).Ptype.ftype in
          `Step (fun cur lens -> lens.(k) <- dec cur lens)
        | None ->
          (match fixed_span fields.(i).Ptype.ftype with
           | Some n -> `Fskip n
           | None -> `Step (comp_sskip_type endian lf fields.(i).Ptype.ftype)))
  in
  let rec coalesce = function
    | `Fskip a :: `Fskip b :: rest -> coalesce (`Fskip (a + b) :: rest)
    | `Fskip n :: rest ->
      (fun cur _ ->
         sneed cur n;
         cur.spos <- cur.spos + n)
      :: coalesce rest
    | `Step f :: rest -> f :: coalesce rest
    | [] -> []
  in
  let steps = Array.of_list (coalesce raw) in
  let ns = Array.length steps in
  fun cur ->
    let lens = if nslots = 0 then no_lens else Array.make nslots (Value.Int 0) in
    for i = 0 to ns - 1 do
      steps.(i) cur lens
    done

(* --- lazy decoders: extent index + on-demand field cells -------------------- *)

type ldecoder = {
  lfmt : Ptype.record;
  lnf : int;
  lnames : string array;
  (* one scan pass: record each field's start offset into [offs]
     (length nf + 1; the last slot is the record's end) and fill the
     length-slot array, validating exactly what a skip validates *)
  lscan : scursor -> int array -> Value.t array -> unit;
  lnslots : int;
  (* per-field materialiser over the field's recorded extent *)
  lfield : (scursor -> Value.t array -> Value.t) array;
}

type lview = {
  lv : ldecoder;
  lsrc : Slice.t;
  loffs : int array;
  llens : Value.t array;
  lcells : Value.t option array;
}

let compile_decode_lazy ~endian (r : Ptype.record) : ldecoder =
  timed_compile (fun () ->
      let fields, nf, nslots, slot_for_field, slot_for_name, _ =
        record_layout r
      in
      let lf = lf_of r slot_for_name in
      let lnames = Array.map (fun (f : Ptype.field) -> f.fname) fields in
      (* scan steps: length-referenced fields decode into their slot (the
         integer-slot decode dropped fields keep), everything else skips
         with full validation; adjacent fixed spans could coalesce here
         but the per-field extents are the product, so each field ends
         with its own offset stamp *)
      let steps =
        Array.init nf (fun i ->
            match slot_for_field i with
            | Some k ->
              let dec = comp_sdecode_type endian lf fields.(i).Ptype.ftype in
              fun cur lens -> lens.(k) <- dec cur lens
            | None -> comp_sskip_type endian lf fields.(i).Ptype.ftype)
      in
      let lscan cur offs lens =
        for i = 0 to nf - 1 do
          offs.(i) <- cur.spos;
          steps.(i) cur lens
        done;
        offs.(nf) <- cur.spos
      in
      let lfield =
        Array.init nf (fun i -> comp_sdecode_type endian lf fields.(i).Ptype.ftype)
      in
      { lfmt = r; lnf = nf; lnames; lscan; lnslots = nslots; lfield })

let decode_lazy (d : ldecoder) ?(pos = 0) (s : Slice.t) : lview =
  let cur = { sdata = s; spos = pos; slimit = Slice.length s } in
  let offs = Array.make (d.lnf + 1) pos in
  let lens =
    if d.lnslots = 0 then no_lens else Array.make d.lnslots (Value.Int 0)
  in
  d.lscan cur offs lens;
  if cur.spos <> cur.slimit then
    decode_error "trailing garbage: %d bytes left after record %s"
      (cur.slimit - cur.spos) d.lfmt.Ptype.rname;
  { lv = d; lsrc = s; loffs = offs; llens = lens; lcells = Array.make d.lnf None }

let lview_fields (v : lview) = v.lv.lnf
let lview_format (v : lview) = v.lv.lfmt

let lview_field (v : lview) (i : int) : Value.t =
  if i < 0 || i >= v.lv.lnf then
    invalid_arg
      (Printf.sprintf "Codec.lview_field: index %d outside record of %d" i
         v.lv.lnf);
  match v.lcells.(i) with
  | Some x -> x
  | None ->
    let cur = { sdata = v.lsrc; spos = v.loffs.(i); slimit = v.loffs.(i + 1) } in
    let x = v.lv.lfield.(i) cur v.llens in
    v.lcells.(i) <- Some x;
    x

let lview_value (v : lview) : Value.t =
  Value.Record
    (Array.init v.lv.lnf (fun i ->
         { Value.name = v.lv.lnames.(i); v = lview_field v i }))

(* --- fused lazy morph plans: slices in, arena-pooled target out ------------- *)

(* Process-unique arena site ids, one per record-assembly point of a
   compiled lazy plan: an (arena, site) pair always means one shape, so
   the pooled skeleton can be reused blind. *)
let site_counter = Atomic.make 0
let fresh_site () = Atomic.fetch_and_add site_counter 1

type lmorpher = {
  lmfrom : Ptype.record;
  lminto : Ptype.record;
  lmrun : Arena.t -> scursor -> Value.t;
  lmat : int; (* field sites materialised per message (array elems count once) *)
  lmskip : int; (* field sites skipped per message *)
}

(* Static per-message field-site accounting for the
   codec.lazy_fields_materialized / _skipped counters: one count per
   declared field site, arrays contributing one element's worth —
   compile-time constants, so the hot path ticks two counters and
   threads nothing. *)
let count_lazy_fields (src : Ptype.record) (dst : Ptype.record) : int * int =
  let rec skipped_of (ty : Ptype.t) : int =
    match ty with
    | Ptype.Basic _ -> 1
    | Record r ->
      List.fold_left (fun a (f : Ptype.field) -> a + skipped_of f.ftype) 0 r.fields
    | Array { elem; _ } -> skipped_of elem
  in
  let rec record_counts (src : Ptype.record) (dst : Ptype.record) : int * int =
    let first_dst nm =
      List.find_opt (fun (f : Ptype.field) -> f.fname = nm) dst.fields
    in
    List.fold_left
      (fun (m, s) (f : Ptype.field) ->
         match first_dst f.fname with
         | None -> (m, s + skipped_of f.ftype)
         | Some d ->
           (match f.ftype, d.Ptype.ftype with
            | Ptype.Record r1, Ptype.Record r2 ->
              let m', s' = record_counts r1 r2 in
              (m + m', s + s')
            | Array { elem = Record r1; _ }, Array { elem = Record r2; _ } ->
              let m', s' = record_counts r1 r2 in
              (m + m', s + s')
            | _ -> (m + 1, s)))
      (0, 0) src.fields
  in
  record_counts src dst

let rec comp_smorph_type endian (lf : string -> Value.t array -> int)
    ~(poolable : bool) (src : Ptype.t) (dst : Ptype.t) :
  (Arena.t -> scursor -> Value.t array -> Value.t) option =
  if Ptype.equal_type src dst then begin
    match src with
    | Ptype.Record r when poolable ->
      (* an identical nested record still pools its skeleton *)
      let sub = comp_smorph_record endian ~poolable r r in
      Some (fun arena cur _ -> sub arena cur)
    | _ ->
      let dec = comp_sdecode_type endian lf src in
      Some (fun _ cur lens -> dec cur lens)
  end
  else
    match src, dst with
    | Ptype.Basic _, Ptype.Basic _ ->
      (match Convert.compile_type src dst with
       | None -> None
       | Some co ->
         let dec = comp_sdecode_type endian lf src in
         Some (fun _ cur lens -> co (dec cur lens)))
    | Record r1, Record r2 ->
      let sub = comp_smorph_record endian ~poolable r1 r2 in
      Some (fun arena cur _ -> sub arena cur)
    | Array a1, Array a2 ->
      let m = min_wire_size a1.elem in
      (* elements repeat, so their record skeletons cannot pool *)
      let elem =
        match comp_smorph_type endian lf ~poolable:false a1.elem a2.elem with
        | Some f -> f
        | None ->
          let sk = comp_sskip_type endian lf a1.elem in
          let d = Value.default a2.elem in
          fun _ cur lens ->
            sk cur lens;
            Value.copy d
      in
      let dmodel = Value.default a2.elem in
      let getn, what =
        match a1.size with
        | Ptype.Fixed k -> (fun _ -> k), "fixed-size array"
        | Length_field nm -> lf nm, Printf.sprintf "%S" nm
      in
      let check cur lens =
        let n = getn lens in
        if n < 0 then decode_error "negative array length %d for %s" n what;
        let remaining = cur.slimit - cur.spos in
        if (m > 0 && n > remaining / m) || (m = 0 && n > cur.slimit) then
          decode_error "array length %d for %s exceeds message size" n what;
        n
      in
      (match a2.size with
       | Ptype.Length_field _ ->
         Some
           (fun arena cur lens ->
              let n = check cur lens in
              let items = Array.init n (fun _ -> elem arena cur lens) in
              Value.Array { items; len = n; model = Some dmodel })
       | Fixed k ->
         let eskip = comp_sskip_type endian lf a1.elem in
         Some
           (fun arena cur lens ->
              let n = check cur lens in
              let take = if k < n then k else n in
              let items =
                Array.init k (fun i ->
                    if i < take then elem arena cur lens else Value.copy dmodel)
              in
              for _ = take + 1 to n do
                eskip cur lens
              done;
              Value.Array { items; len = k; model = Some dmodel }))
    | (Basic _ | Record _ | Array _), _ -> None

and comp_smorph_record endian ~(poolable : bool) (src : Ptype.record)
    (dst : Ptype.record) : Arena.t -> scursor -> Value.t =
  let fields, nf, nslots, slot_for_field, slot_for_name, first_index =
    record_layout src
  in
  let lf = lf_of src slot_for_name in
  let dst_fields = Array.of_list dst.fields in
  let nt = Array.length dst_fields in
  let tnames = Array.map (fun (f : Ptype.field) -> f.fname) dst_fields in
  let target_of = Array.make (max nf 1) (-1) in
  Array.iteri
    (fun j (f : Ptype.field) ->
       match first_index f.fname with
       | Some i -> target_of.(i) <- j
       | None -> ())
    dst_fields;
  let finals =
    Array.init (max nt 1) (fun j ->
        if j < nt then `Default (Convert.field_default dst_fields.(j))
        else `Default (fun () -> Value.Int 0))
  in
  let raw =
    List.init nf (fun i ->
        let sty = fields.(i).Ptype.ftype in
        let j = target_of.(i) in
        if j >= 0 then begin
          let dty = dst_fields.(j).Ptype.ftype in
          match slot_for_field i with
          | Some k ->
            let dec = comp_sdecode_type endian lf sty in
            let co =
              if Ptype.equal_type sty dty then Some (fun v -> v)
              else Convert.compile_type sty dty
            in
            (match co with
             | Some co ->
               finals.(j) <- `Tmp;
               `Step
                 (fun _ cur lens tmp ->
                    let v = dec cur lens in
                    lens.(k) <- v;
                    tmp.(j) <- co v)
             | None -> `Step (fun _ cur lens _ -> lens.(k) <- dec cur lens))
          | None ->
            (match comp_smorph_type endian lf ~poolable sty dty with
             | Some dec ->
               finals.(j) <- `Tmp;
               `Step (fun arena cur lens tmp -> tmp.(j) <- dec arena cur lens)
             | None ->
               (match fixed_span sty with
                | Some n -> `Fskip n
                | None ->
                  let sk = comp_sskip_type endian lf sty in
                  `Step (fun _ cur lens _ -> sk cur lens)))
        end
        else
          match slot_for_field i with
          | Some k ->
            let dec = comp_sdecode_type endian lf sty in
            `Step (fun _ cur lens _ -> lens.(k) <- dec cur lens)
          | None ->
            (match fixed_span sty with
             | Some n -> `Fskip n
             | None ->
               let sk = comp_sskip_type endian lf sty in
               `Step (fun _ cur lens _ -> sk cur lens)))
  in
  let rec coalesce = function
    | `Fskip a :: `Fskip b :: rest -> coalesce (`Fskip (a + b) :: rest)
    | `Fskip n :: rest ->
      (fun _ cur _ _ ->
         sneed cur n;
         cur.spos <- cur.spos + n)
      :: coalesce rest
    | `Step f :: rest -> f :: coalesce rest
    | [] -> []
  in
  let steps = Array.of_list (coalesce raw) in
  let ns = Array.length steps in
  let g =
    Array.init (max nt 1) (fun j ->
        match finals.(j) with
        | `Tmp -> fun tmp -> tmp.(j)
        | `Default d -> fun _ -> d ())
  in
  (* assembly: one arena site per (plan, record position); pooled cells
     keep their names from first use, only [v] is rewritten *)
  let site = fresh_site () in
  let cells arena =
    if poolable then Arena.entries arena ~site tnames
    else Array.map (fun name -> { Value.name; v = Value.Int 0 }) tnames
  in
  fun arena cur ->
    let lens = if nslots = 0 then no_lens else Array.make nslots (Value.Int 0) in
    let tmp = Array.make (max nt 1) (Value.Int 0) in
    for i = 0 to ns - 1 do
      steps.(i) arena cur lens tmp
    done;
    let es = cells arena in
    for j = 0 to nt - 1 do
      es.(j).Value.v <- g.(j) tmp
    done;
    Value.Record es

let compile_morph_lazy ~endian ~(from_ : Ptype.record) ~(into : Ptype.record) :
  lmorpher =
  timed_compile (fun () ->
      let body = comp_smorph_record endian ~poolable:true from_ into in
      let lmrun arena cur =
        let res = body arena cur in
        Value.sync_lengths into res;
        res
      in
      let lmat, lmskip = count_lazy_fields from_ into in
      { lmfrom = from_; lminto = into; lmrun; lmat; lmskip })

let lmorph_payload (m : lmorpher) ?(arena = Arena.null) ?(pos = 0)
    (s : Slice.t) : Value.t =
  let cur = { sdata = s; spos = pos; slimit = Slice.length s } in
  let v = m.lmrun arena cur in
  if cur.spos <> cur.slimit then
    decode_error "trailing garbage: %d bytes left after record %s"
      (cur.slimit - cur.spos) m.lmfrom.Ptype.rname;
  v

let lmorpher_formats m = (m.lmfrom, m.lminto)
let lmorpher_stats m = (m.lmat, m.lmskip)

(* --- plan caches ------------------------------------------------------------------- *)

(* Per-format plans, both endians built lazily on first use.  Buckets hang
   off [Ptype.hash_record] and resolve collisions with structural equality.
   Bounded: hostile shipped meta-data can mint unlimited formats, so the
   cache evicts its least-recently-used entry at the cap — a burst of fresh
   formats cannot flush the hot ones (the old behaviour was a whole-cache
   reset).  Evictions tick [codec.plan_evictions]. *)

(* Bounded map with lazy-deletion LRU: each touch stamps the entry with a
   fresh clock tick and pushes (entry, tick) on the queue; eviction pops
   until it finds a pair whose tick still matches (stale pairs are
   superseded touches).  The queue is compacted when it outgrows the live
   entry count, keeping it O(live) amortised. *)
module Lru = struct
  type ('k, 'v) entry = {
    ekey : 'k;
    ev : 'v;
    ehash : int;
    mutable tick : int;
    mutable alive : bool;
  }

  type ('k, 'v) t = {
    table : (int, ('k, 'v) entry list) Hashtbl.t;
    queue : (('k, 'v) entry * int) Queue.t;
    equal : 'k -> 'k -> bool;
    mutable count : int;
    mutable clock : int;
  }

  let create ~equal n =
    { table = Hashtbl.create n; queue = Queue.create (); equal; count = 0;
      clock = 0 }

  let size t = t.count

  let compact t =
    let q' = Queue.create () in
    Queue.iter
      (fun ((e, tk) as pair) -> if e.alive && e.tick = tk then Queue.push pair q')
      t.queue;
    Queue.clear t.queue;
    Queue.transfer q' t.queue

  let touch t e =
    t.clock <- t.clock + 1;
    e.tick <- t.clock;
    Queue.push (e, t.clock) t.queue;
    if Queue.length t.queue > (4 * t.count) + 64 then compact t

  let find t ~hash k =
    match Hashtbl.find_opt t.table hash with
    | None -> None
    | Some bucket ->
      (match List.find_opt (fun e -> t.equal e.ekey k) bucket with
       | Some e ->
         touch t e;
         Some e.ev
       | None -> None)

  (* Evict the least-recently-used live entry; [false] when empty. *)
  let evict_one t =
    let rec go () =
      match Queue.take_opt t.queue with
      | None -> false
      | Some (e, tk) ->
        if e.alive && e.tick = tk then begin
          e.alive <- false;
          let bucket =
            Option.value ~default:[] (Hashtbl.find_opt t.table e.ehash)
          in
          (match List.filter (fun e' -> e' != e) bucket with
           | [] -> Hashtbl.remove t.table e.ehash
           | rest -> Hashtbl.replace t.table e.ehash rest);
          t.count <- t.count - 1;
          true
        end
        else go ()
    in
    go ()

  (* Insert under [hash], evicting LRU entries down to [max - 1] first.
     Returns how many entries were evicted. *)
  let add t ~hash ~max k v =
    let evicted = ref 0 in
    while t.count >= max && evict_one t do
      incr evicted
    done;
    let e = { ekey = k; ev = v; ehash = hash; tick = 0; alive = true } in
    Hashtbl.replace t.table hash
      (e :: Option.value ~default:[] (Hashtbl.find_opt t.table hash));
    t.count <- t.count + 1;
    touch t e;
    !evicted

  let reset t =
    Hashtbl.reset t.table;
    Queue.clear t.queue;
    t.count <- 0;
    t.clock <- 0
end

(* Per-endian plan slots, filled on demand.  The slots are plain mutable
   options rather than [Lazy.t]: every write happens under the owning
   stripe's lock, so two domains can never race a force (which would
   raise [Lazy.Undefined] on a shared lazy).  A reader outside the lock
   that observes a stale [None] simply falls through to the locked
   double-check; one that observes [Some plan] sees a fully-initialised
   immutable closure tree, which is safe to run anywhere. *)
type plans = {
  mutable enc_le : encoder option;
  mutable enc_be : encoder option;
  mutable dec_le : decoder option;
  mutable dec_be : decoder option;
  mutable ldec_le : ldecoder option;
  mutable ldec_be : ldecoder option;
}

type mplans = {
  mutable mor_le : morpher option;
  mutable mor_be : morpher option;
  mutable lmor_le : lmorpher option;
  mutable lmor_be : lmorpher option;
}

(* One lock stripe of a {!cache}: an LRU of format plans plus an LRU of
   fused morph plans, both touched only under [lock].  Plan compilation
   also runs under the stripe lock, which serialises duplicate compiles
   of the same plan for free (stripe-level singleflight). *)
type stripe = {
  lock : Mutex.t;
  ptbl : (Ptype.record, plans) Lru.t;
  mtbl : (Ptype.record * Ptype.record, mplans) Lru.t;
}

(* A plan cache: the codec part of a [Pbio.Ctx.t] capability.  Striped
   so domains sharing one cache contend on 1/N of it; [cgen] is bumped
   by {!reset_plans} to invalidate the per-domain 1-slot memos that sit
   in front (a domain cannot clear another domain's DLS slot). *)
type cache = {
  stripes : stripe array; (* power-of-two length *)
  mutable cmax : int; (* total entry bound per table kind *)
  mutable cgen : int;
  mutable cmetrics : metrics;
}

let default_max_plans = 512
let default_stripes = 8

let fresh_stripe () =
  {
    lock = Mutex.create ();
    ptbl = Lru.create ~equal:Ptype.equal_record 16;
    mtbl =
      Lru.create
        ~equal:(fun (f, i) (f', i') ->
          Ptype.equal_record f f' && Ptype.equal_record i i')
        8;
  }

let create_cache ?(metrics = Obs.null) ?(max_plans = default_max_plans)
    ?(stripes = default_stripes) () : cache =
  if max_plans < 1 then invalid_arg "Codec.create_cache: max_plans must be >= 1";
  if stripes < 1 then invalid_arg "Codec.create_cache: stripes must be >= 1";
  let n = ref 1 in
  while !n < stripes do n := !n * 2 done;
  {
    stripes = Array.init !n (fun _ -> fresh_stripe ());
    cmax = max_plans;
    cgen = 0;
    cmetrics = make_metrics metrics;
  }

let default_cache = create_cache ()

(* Legacy shim: retarget both the compile-side metrics and the default
   cache's hit/eviction metrics, matching the pre-context behaviour
   where one global registry saw everything. *)
let set_metrics reg =
  metrics := make_metrics reg;
  default_cache.cmetrics <- !metrics

let with_stripe (s : stripe) f =
  Mutex.lock s.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock s.lock) f

let stripe_for (c : cache) (h : int) : stripe =
  c.stripes.(h land (Array.length c.stripes - 1))

(* Per-stripe share of the total bound; stripe counts never sum past
   [cmax] because the stripe count divides the power-of-two-friendly
   defaults, and a floor of 1 keeps tiny caches functional. *)
let stripe_cap (c : cache) : int = max 1 (c.cmax / Array.length c.stripes)

let set_max_plans ?(cache = default_cache) n =
  if n < 1 then invalid_arg "Codec.set_max_plans: must be >= 1";
  cache.cmax <- n

let max_plans ?(cache = default_cache) () = cache.cmax

let plan_cache_size ?(cache = default_cache) () =
  Array.fold_left
    (fun acc s -> acc + with_stripe s (fun () -> Lru.size s.ptbl + Lru.size s.mtbl))
    0 cache.stripes

let reset_plans ?(cache = default_cache) () =
  Array.iter
    (fun s ->
       with_stripe s (fun () ->
           Lru.reset s.ptbl;
           Lru.reset s.mtbl))
    cache.stripes;
  cache.cgen <- cache.cgen + 1

let note_evictions (c : cache) n =
  if n > 0 then begin
    let m = c.cmetrics in
    if m.mon then Obs.Counter.add m.evictions n
  end

let hit (c : cache) =
  let m = c.cmetrics in
  if m.mon then Obs.Counter.incr m.cache_hits

(* One-slot physical-identity memo in front of the hashed stripes:
   almost every caller passes the same statically-defined [Ptype.record]
   value per message, and [Ptype.hash_record] walks the whole
   description — at 100-byte messages that walk costs as much as
   decoding.  A [==] hit skips both the walk and the stripe lock.  The
   slot lives in domain-local storage (one per domain per process, not
   per cache), is keyed by cache identity and generation, and does not
   refresh LRU order — interleaved workloads fall through to the hashed
   lookup and keep the hot entry recent, exactly as before. *)
type local_memo = {
  mutable lp : (cache * int * Ptype.record * stripe * plans) option;
  mutable lm :
    (cache * int * (Ptype.record * Ptype.record) * stripe * mplans) option;
}

let local_memo_key : local_memo Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { lp = None; lm = None })

let plans_for (c : cache) (r : Ptype.record) : stripe * plans =
  let memo = Domain.DLS.get local_memo_key in
  match memo.lp with
  | Some (c0, g0, r0, s, p) when c0 == c && r0 == r && g0 = c.cgen ->
    hit c;
    (s, p)
  | _ ->
    let h = Ptype.hash_record r in
    let s = stripe_for c h in
    let p =
      with_stripe s (fun () ->
          match Lru.find s.ptbl ~hash:h r with
          | Some p ->
            hit c;
            p
          | None ->
            let p =
              { enc_le = None; enc_be = None; dec_le = None; dec_be = None;
                ldec_le = None; ldec_be = None }
            in
            note_evictions c (Lru.add s.ptbl ~hash:h ~max:(stripe_cap c) r p);
            p)
    in
    memo.lp <- Some (c, c.cgen, r, s, p);
    (s, p)

let encoder_for ?(cache = default_cache) ~endian (r : Ptype.record) : encoder =
  let s, p = plans_for cache r in
  match (endian, p.enc_le, p.enc_be) with
  | Little, Some e, _ | Big, _, Some e -> e
  | _ ->
    with_stripe s (fun () ->
        match (endian, p.enc_le, p.enc_be) with
        | Little, Some e, _ | Big, _, Some e -> e
        | Little, None, _ ->
          let e = compile_encode ~endian r in
          p.enc_le <- Some e;
          e
        | Big, _, None ->
          let e = compile_encode ~endian r in
          p.enc_be <- Some e;
          e)

let decoder_for ?(cache = default_cache) ~endian (r : Ptype.record) : decoder =
  let s, p = plans_for cache r in
  match (endian, p.dec_le, p.dec_be) with
  | Little, Some d, _ | Big, _, Some d -> d
  | _ ->
    with_stripe s (fun () ->
        match (endian, p.dec_le, p.dec_be) with
        | Little, Some d, _ | Big, _, Some d -> d
        | Little, None, _ ->
          let d = compile_decode ~endian r in
          p.dec_le <- Some d;
          d
        | Big, _, None ->
          let d = compile_decode ~endian r in
          p.dec_be <- Some d;
          d)

let mplans_for (c : cache) ~(from_ : Ptype.record) ~(into : Ptype.record) :
  stripe * mplans =
  let memo = Domain.DLS.get local_memo_key in
  match memo.lm with
  | Some (c0, g0, (f0, i0), s, p) when c0 == c && f0 == from_ && i0 == into && g0 = c.cgen ->
    hit c;
    (s, p)
  | _ ->
    let h = ((Ptype.hash_record from_ * 31) + Ptype.hash_record into) land max_int in
    let s = stripe_for c h in
    let p =
      with_stripe s (fun () ->
          match Lru.find s.mtbl ~hash:h (from_, into) with
          | Some p ->
            hit c;
            p
          | None ->
            let p = { mor_le = None; mor_be = None; lmor_le = None; lmor_be = None } in
            note_evictions c
              (Lru.add s.mtbl ~hash:h ~max:(stripe_cap c) (from_, into) p);
            p)
    in
    memo.lm <- Some (c, c.cgen, (from_, into), s, p);
    (s, p)

let morpher_in (cache : cache) ~endian ~(from_ : Ptype.record)
    ~(into : Ptype.record) : morpher =
  let s, p = mplans_for cache ~from_ ~into in
  match (endian, p.mor_le, p.mor_be) with
  | Little, Some m, _ | Big, _, Some m -> m
  | _ ->
    with_stripe s (fun () ->
        match (endian, p.mor_le, p.mor_be) with
        | Little, Some m, _ | Big, _, Some m -> m
        | Little, None, _ ->
          let m = compile_morph ~endian ~from_ ~into in
          p.mor_le <- Some m;
          m
        | Big, _, None ->
          let m = compile_morph ~endian ~from_ ~into in
          p.mor_be <- Some m;
          m)

let morpher_for ~endian ~from_ ~into = morpher_in default_cache ~endian ~from_ ~into

let ldecoder_for ?(cache = default_cache) ~endian (r : Ptype.record) : ldecoder =
  let s, p = plans_for cache r in
  match (endian, p.ldec_le, p.ldec_be) with
  | Little, Some d, _ | Big, _, Some d -> d
  | _ ->
    with_stripe s (fun () ->
        match (endian, p.ldec_le, p.ldec_be) with
        | Little, Some d, _ | Big, _, Some d -> d
        | Little, None, _ ->
          let d = compile_decode_lazy ~endian r in
          p.ldec_le <- Some d;
          d
        | Big, _, None ->
          let d = compile_decode_lazy ~endian r in
          p.ldec_be <- Some d;
          d)

let lmorpher_in (cache : cache) ~endian ~(from_ : Ptype.record)
    ~(into : Ptype.record) : lmorpher =
  let s, p = mplans_for cache ~from_ ~into in
  match (endian, p.lmor_le, p.lmor_be) with
  | Little, Some m, _ | Big, _, Some m -> m
  | _ ->
    with_stripe s (fun () ->
        match (endian, p.lmor_le, p.lmor_be) with
        | Little, Some m, _ | Big, _, Some m -> m
        | Little, None, _ ->
          let m = compile_morph_lazy ~endian ~from_ ~into in
          p.lmor_le <- Some m;
          m
        | Big, _, None ->
          let m = compile_morph_lazy ~endian ~from_ ~into in
          p.lmor_be <- Some m;
          m)
