(* Out-of-band meta-data: a self-describing binary encoding of format
   descriptions, shipped once per (connection, format) before the first
   record of that format.  Following the paper, the meta-data for a format
   may also carry a set of retro-transformations: for each, the full
   description of the target format plus the Ecode source text that converts
   a message into it (Figure 1).  The code travels as an opaque string at
   this layer; the morphing layer parses and compiles it. *)

type xform_spec = {
  source : Ptype.record option;
  (* the format the snippet reads from; [None] means the base format this
     meta describes.  Explicit sources let a format ship a *chain* of
     transformations (Figure 1: Rev 2.0 -> Rev 1.0 -> Rev 0.0), each hop
     rolling back one revision. *)
  target : Ptype.record;
  code : string; (* Ecode source; input is bound to [new], output to [old] *)
}

type format_meta = {
  body : Ptype.record;
  xforms : xform_spec list;
}

let plain body = { body; xforms = [] }

let meta_magic = "PBIM"

exception Meta_error of string

let meta_error fmt = Fmt.kstr (fun s -> raise (Meta_error s)) fmt

(* Encoding: length-prefixed strings, 4-byte LE ints, 1-byte tags. *)

let add_int buf n = Buffer.add_int32_le buf (Int32.of_int n)

let add_str buf s =
  add_int buf (String.length s);
  Buffer.add_string buf s

let rec add_type buf (ty : Ptype.t) =
  match ty with
  | Basic Int -> Buffer.add_char buf 'i'
  | Basic Uint -> Buffer.add_char buf 'u'
  | Basic Float -> Buffer.add_char buf 'f'
  | Basic Char -> Buffer.add_char buf 'c'
  | Basic Bool -> Buffer.add_char buf 'b'
  | Basic String -> Buffer.add_char buf 's'
  | Basic (Enum e) ->
    Buffer.add_char buf 'e';
    add_str buf e.ename;
    add_int buf (List.length e.cases);
    List.iter (fun (n, v) -> add_str buf n; add_int buf v) e.cases
  | Record r ->
    Buffer.add_char buf 'R';
    add_record buf r
  | Array { elem; size = Fixed n } ->
    Buffer.add_char buf 'A';
    add_int buf n;
    add_type buf elem
  | Array { elem; size = Length_field name } ->
    Buffer.add_char buf 'V';
    add_str buf name;
    add_type buf elem

and add_record buf (r : Ptype.record) =
  add_str buf r.rname;
  add_int buf (List.length r.fields);
  List.iter
    (fun (f : Ptype.field) ->
       add_str buf f.fname;
       (match f.fdefault with
        | None -> Buffer.add_char buf '_'
        | Some (Cint n) -> Buffer.add_char buf 'I'; add_int buf n
        | Some (Cfloat x) ->
          Buffer.add_char buf 'F';
          Buffer.add_int64_le buf (Int64.bits_of_float x)
        | Some (Cchar c) -> Buffer.add_char buf 'C'; Buffer.add_char buf c
        | Some (Cbool b) -> Buffer.add_char buf 'B'; Buffer.add_char buf (if b then '\x01' else '\x00')
        | Some (Cstring s) -> Buffer.add_char buf 'S'; add_str buf s
        | Some (Cenum s) -> Buffer.add_char buf 'E'; add_str buf s);
       add_type buf f.ftype)
    r.fields

let encode (m : format_meta) : string =
  let buf = Buffer.create 256 in
  Buffer.add_string buf meta_magic;
  add_record buf m.body;
  add_int buf (List.length m.xforms);
  List.iter
    (fun x ->
       (match x.source with
        | None -> Buffer.add_char buf '_'
        | Some r -> Buffer.add_char buf 'S'; add_record buf r);
       add_record buf x.target;
       add_str buf x.code)
    m.xforms;
  Buffer.contents buf

(* Decoding *)

type cursor = { data : string; mutable pos : int }

let take cur n =
  if cur.pos + n > String.length cur.data then meta_error "truncated meta-data";
  let s = String.sub cur.data cur.pos n in
  cur.pos <- cur.pos + n;
  s

let take_char cur =
  if cur.pos >= String.length cur.data then meta_error "truncated meta-data";
  let c = cur.data.[cur.pos] in
  cur.pos <- cur.pos + 1;
  c

let take_int cur =
  let s = take cur 4 in
  Int32.to_int (String.get_int32_le s 0)

let take_str cur =
  let n = take_int cur in
  if n < 0 then meta_error "negative string length";
  take cur n

let rec take_type cur : Ptype.t =
  match take_char cur with
  | 'i' -> Basic Int
  | 'u' -> Basic Uint
  | 'f' -> Basic Float
  | 'c' -> Basic Char
  | 'b' -> Basic Bool
  | 's' -> Basic String
  | 'e' ->
    let ename = take_str cur in
    let n = take_int cur in
    if n < 0 then meta_error "negative enum case count";
    let cases = List.init n (fun _ -> let c = take_str cur in (c, take_int cur)) in
    Basic (Enum { ename; cases })
  | 'R' -> Record (take_record cur)
  | 'A' ->
    let n = take_int cur in
    if n < 0 then meta_error "negative fixed array size";
    Array { size = Fixed n; elem = take_type cur }
  | 'V' ->
    let name = take_str cur in
    Array { size = Length_field name; elem = take_type cur }
  | c -> meta_error "bad type tag %C" c

and take_record cur : Ptype.record =
  let rname = take_str cur in
  let n = take_int cur in
  if n < 0 then meta_error "negative field count";
  let fields =
    List.init n (fun _ ->
        let fname = take_str cur in
        let fdefault : Ptype.const option =
          match take_char cur with
          | '_' -> None
          | 'I' -> Some (Cint (take_int cur))
          | 'F' ->
            let s = take cur 8 in
            Some (Cfloat (Int64.float_of_bits (String.get_int64_le s 0)))
          | 'C' -> Some (Cchar (take_char cur))
          | 'B' -> Some (Cbool (take_char cur <> '\x00'))
          | 'S' -> Some (Cstring (take_str cur))
          | 'E' -> Some (Cenum (take_str cur))
          | c -> meta_error "bad default tag %C" c
        in
        let ftype = take_type cur in
        { Ptype.fname; ftype; fdefault })
  in
  { rname; fields }

let decode (data : string) : (format_meta, Err.t) result =
  try
    let cur = { data; pos = 0 } in
    if take cur 4 <> meta_magic then meta_error "bad meta magic";
    let body = take_record cur in
    let n = take_int cur in
    if n < 0 then meta_error "negative transformation count";
    let xforms =
      List.init n (fun _ ->
          let source =
            match take_char cur with
            | '_' -> None
            | 'S' -> Some (take_record cur)
            | c -> meta_error "bad transformation source tag %C" c
          in
          let target = take_record cur in
          let code = take_str cur in
          { source; target; code })
    in
    if cur.pos <> String.length data then meta_error "trailing garbage in meta-data";
    Ok { body; xforms }
  with Meta_error msg -> Error (`Meta msg)

(* Structural identity of a full meta block (body plus transformations):
   receiver-side caches key on this. *)

let equal m1 m2 =
  Ptype.equal_record m1.body m2.body
  && List.length m1.xforms = List.length m2.xforms
  && List.for_all2
    (fun a b ->
       a.code = b.code
       && Ptype.equal_record a.target b.target
       && (match a.source, b.source with
           | None, None -> true
           | Some r1, Some r2 -> Ptype.equal_record r1 r2
           | None, Some _ | Some _, None -> false))
    m1.xforms m2.xforms

let hash m =
  Hashtbl.hash
    ( Ptype.hash_record m.body,
      List.map
        (fun x ->
           ( Option.map Ptype.hash_record x.source,
             Ptype.hash_record x.target,
             Hashtbl.hash x.code ))
        m.xforms )
