(* Structural format conversion, compiled once per format pair.

   This is the PBIO piece of "dynamic code generation": given the wire
   format of an incoming record and the (different) format the receiver
   registered, [compile] produces a specialised closure chain in which every
   field-name lookup, type dispatch and coercion has been resolved ahead of
   time.  Per message, only direct calls remain.

   Semantics follow the paper's imperfect-match step (Algorithm 2, lines
   26-29): fields are matched by name; target fields missing from the source
   take their default values; source fields absent from the target are
   dropped.  XML-style type mapping semantics by field name, generalised
   with numeric coercions. *)

type conv = Value.t -> Value.t

(* Coerce between basic types.  Returns None when no sensible coercion
   exists (the target field then takes its default). *)
let coerce_basic (src : Ptype.basic) (dst : Ptype.basic) : conv option =
  match src, dst with
  | Ptype.Int, Ptype.Int
  | Uint, Uint | Float, Float | Char, Char | Bool, Bool | String, String ->
    Some (fun v -> v)
  | Enum e1, Enum e2 when e1 = e2 -> Some (fun v -> v)
  | (Uint | Char | Bool | Enum _), Int -> Some (fun v -> Value.Int (Value.to_int v))
  | (Int | Char | Bool | Enum _), Uint -> Some (fun v -> Value.Uint (abs (Value.to_int v)))
  | (Int | Uint | Char | Bool | Enum _), Float ->
    Some (fun v -> Value.Float (Value.to_float v))
  | Float, Int -> Some (fun v -> Value.Int (int_of_float (Value.to_float v)))
  | Float, Uint -> Some (fun v -> Value.Uint (abs (int_of_float (Value.to_float v))))
  | (Int | Uint | Float | Char | Enum _), Bool -> Some (fun v -> Value.Bool (Value.to_bool v))
  | (Int | Uint), Char -> Some (fun v -> Value.Char (Char.chr (Value.to_int v land 0xff)))
  | (Int | Uint | Char | Bool), Enum e ->
    (* value -> case-name table built once when the coercion is compiled;
       first binding wins, like the [List.find_opt] it replaces *)
    let tbl = Hashtbl.create (2 * List.length e.cases) in
    List.iter (fun (c, n) -> if not (Hashtbl.mem tbl n) then Hashtbl.add tbl n c) e.cases;
    let fallback = Value.zero_basic (Enum e) in
    Some
      (fun v ->
         let n = Value.to_int v in
         match Hashtbl.find_opt tbl n with
         | Some case -> Value.Enum (case, n)
         | None -> fallback)
  | Enum _, Enum e2 ->
    (* Map by case name where possible, falling back to the target's first
       case: renumbered enums keep their meaning across versions.  The
       name -> value table keeps the first binding, like [List.assoc_opt]. *)
    let tbl = Hashtbl.create (2 * List.length e2.cases) in
    List.iter (fun (c, n) -> if not (Hashtbl.mem tbl c) then Hashtbl.add tbl c n) e2.cases;
    let fallback = Value.zero_basic (Enum e2) in
    Some
      (fun v ->
         match v with
         | Value.Enum (case, _) ->
           (match Hashtbl.find_opt tbl case with
            | Some n -> Value.Enum (case, n)
            | None -> fallback)
         | _ -> fallback)
  | String, (Int | Uint | Float | Char | Bool | Enum _)
  | (Int | Uint | Float | Char | Bool | Enum _), String
  | (Float | Bool | Enum _), Char
  | Float, Enum _ ->
    None

let field_default (f : Ptype.field) : unit -> Value.t =
  let model =
    match f.fdefault, f.ftype with
    | Some c, Ptype.Basic b -> Value.of_const c ~ty:b
    | _, ty -> Value.default ty
  in
  match model with
  | Int _ | Uint _ | Float _ | Char _ | Bool _ | Enum _ | String _ ->
    (fun () -> model) (* immutable: safe to share *)
  | Record _ | Array _ -> (fun () -> Value.copy model)

let rec compile_type (src : Ptype.t) (dst : Ptype.t) : conv option =
  match src, dst with
  | Basic b1, Basic b2 -> coerce_basic b1 b2
  | Record r1, Record r2 -> Some (compile_record r1 r2)
  | Array a1, Array a2 ->
    let elem_conv =
      match compile_type a1.elem a2.elem with
      | Some c -> c
      | None ->
        let d = Value.default a2.elem in
        fun _ -> Value.copy d
    in
    let fill () = Value.default a2.elem in
    (match a2.size with
     | Length_field _ ->
       Some
         (fun v ->
            let n = Value.array_len v in
            let items = Array.init n (fun i -> elem_conv (Value.array_get v i)) in
            Value.Array { items; len = n; model = Some (Value.default a2.elem) })
     | Fixed k ->
       Some
         (fun v ->
            let n = Value.array_len v in
            let items =
              Array.init k (fun i ->
                  if i < n then elem_conv (Value.array_get v i) else fill ())
            in
            Value.Array { items; len = k; model = Some (Value.default a2.elem) }))
  | (Basic _ | Record _ | Array _), _ -> None

and compile_record (src : Ptype.record) (dst : Ptype.record) : conv =
  (* One slot per target field: either pull-and-convert from a source index,
     or materialise the default. *)
  let src_fields = Array.of_list src.fields in
  let src_index name =
    let rec go i =
      if i >= Array.length src_fields then None
      else if src_fields.(i).Ptype.fname = name then Some i
      else go (i + 1)
    in
    go 0
  in
  let slot (f : Ptype.field) : int * (Value.t -> Value.t) option * (unit -> Value.t) =
    let default = field_default f in
    match src_index f.fname with
    | None -> (-1, None, default)
    | Some i ->
      (match compile_type src_fields.(i).Ptype.ftype f.ftype with
       | None -> (-1, None, default)
       | Some conv -> (i, Some conv, default))
  in
  let slots = Array.of_list (List.map (fun f -> (f.Ptype.fname, slot f)) dst.fields) in
  fun v ->
    let es = Value.entries v in
    let out =
      Array.map
        (fun (name, (i, conv, default)) ->
           let v' =
             match conv with
             | Some conv -> conv es.(i).Value.v
             | None -> default ()
           in
           { Value.name; v = v' })
        slots
    in
    Value.Record out

(* --- observability ------------------------------------------------------- *)

type metrics = {
  mon : bool;
  mreg : Obs.t;
  compiles : Obs.Counter.h;
  compile_ns : Obs.Histogram.h;
}

let make_metrics reg =
  {
    mon = Obs.enabled reg;
    mreg = reg;
    compiles = Obs.Counter.make reg "convert.compiles";
    compile_ns = Obs.Histogram.make reg ~unit_:"ns" "convert.compile_ns";
  }

let metrics = ref (make_metrics Obs.null)
let set_metrics reg = metrics := make_metrics reg

let compile ~(from_ : Ptype.record) ~(into : Ptype.record) : conv =
  let m = !metrics in
  let t0 = if m.mon then Obs.now m.mreg else 0. in
  let body = compile_record from_ into in
  if m.mon then begin
    Obs.Counter.incr m.compiles;
    Obs.Histogram.observe m.compile_ns (Obs.now m.mreg -. t0);
    Obs.Trace.add_attr m.mreg "convert" "compiled"
  end;
  fun v ->
    let out = body v in
    (* Length fields may have been matched by name from the source; make
       them agree with the converted arrays. *)
    Value.sync_lengths into out;
    out

(* Memo for the one-shot [convert] entry point, which used to recompile
   the closure chain on every call.  Keyed by the format pair's combined
   structural hash, resolved with structural equality; bounded so fuzzed
   meta-data cannot grow it without limit.  [compile] itself stays
   uncached — callers like [Morph.Receiver] manage their own plan
   caches.  A [memo] is the convert component of a [Pbio.Ctx.t]
   capability: one mutex guards lookup, compile and insert, so a memo
   can be shared across domains (compiles are rare enough that striping
   would buy nothing here — the compiled closures themselves are
   immutable and run lock-free). *)

let max_cached_convs = 512

type memo = {
  mlock : Mutex.t;
  mtbl : (int, ((Ptype.record * Ptype.record) * conv) list) Hashtbl.t;
  mutable mcount : int;
}

let create_memo () =
  { mlock = Mutex.create (); mtbl = Hashtbl.create 64; mcount = 0 }

let default_memo = create_memo ()

let with_memo (m : memo) f =
  Mutex.lock m.mlock;
  Fun.protect ~finally:(fun () -> Mutex.unlock m.mlock) f

let reset_unlocked m =
  Hashtbl.reset m.mtbl;
  m.mcount <- 0

let reset_cache ?(memo = default_memo) () =
  with_memo memo (fun () -> reset_unlocked memo)

let cached (memo : memo) ~(from_ : Ptype.record) ~(into : Ptype.record) : conv =
  let h = ((Ptype.hash_record from_ * 31) + Ptype.hash_record into) land max_int in
  with_memo memo (fun () ->
      let bucket = Option.value ~default:[] (Hashtbl.find_opt memo.mtbl h) in
      match
        List.find_opt
          (fun ((f, i), _) -> Ptype.equal_record f from_ && Ptype.equal_record i into)
          bucket
      with
      | Some (_, c) -> c
      | None ->
        if memo.mcount >= max_cached_convs then reset_unlocked memo;
        let c = compile ~from_ ~into in
        Hashtbl.replace memo.mtbl h
          (((from_, into), c)
           :: Option.value ~default:[] (Hashtbl.find_opt memo.mtbl h));
        memo.mcount <- memo.mcount + 1;
        c)

let convert ?(memo = default_memo) ~from_ ~into v =
  match (cached memo ~from_ ~into) v with
  | out -> Ok out
  | exception Value.Type_error msg -> Error (`Type msg)

(* Identity check used by the receiver: a conversion is unnecessary exactly
   when the two formats are structurally equal. *)
let is_identity ~from_ ~into = Ptype.equal_record from_ into
