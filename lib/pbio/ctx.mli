(** The capability-style execution context for the morphing stack.

    A {!t} bundles the state that used to be ambient process globals —
    the {!Codec.cache} of compiled wire plans, the {!Convert.memo} of
    one-shot converters, and the {!Obs.t} registry hot-path metrics are
    recorded into — into one explicit value, threaded through
    [Wire]/[Codec]/[Convert]/[Morph.Receiver]/[Echo]/[B2b]/[Gateway] as
    an optional [?ctx] argument.  Omitting [?ctx] everywhere reproduces
    the pre-context behaviour byte-for-byte through {!default}.

    Sharing rules (docs/CONCURRENCY.md): the caches are internally
    synchronised and safe to share across domains; the [Obs.t] registry
    is single-domain-owned.  A ctx used from several domains should
    carry {!Obs.null} metrics, with per-shard registries merged at
    scrape time via {!Obs.merge_into}. *)

type t

(** [create ()] builds an independent context with a fresh plan cache
    and convert memo.  [metrics] (default {!Obs.null}) becomes the
    context registry {e and} the plan cache's hit/eviction registry;
    [max_plans]/[stripes] are passed to {!Codec.create_cache}. *)
val create : ?metrics:Obs.t -> ?max_plans:int -> ?stripes:int -> unit -> t

(** Assemble a context from existing components, e.g. to share one plan
    cache between contexts with different metrics registries. *)
val v : ?metrics:Obs.t -> codecs:Codec.cache -> convs:Convert.memo -> unit -> t

(** The compatibility context: {!Obs.null} metrics over
    {!Codec.default_cache} and {!Convert.default_memo}.  Code that calls
    the context-free APIs runs here. *)
val default : t

val obs : t -> Obs.t
val codecs : t -> Codec.cache
val convs : t -> Convert.memo

(** The calling domain's decode arena for this context.  Arenas are
    lock-free and single-domain, so the ctx keeps one per domain in
    [Domain.DLS]: under [--domains N] sharding each worker gets its own
    arena with zero sharing, by construction.  Receivers draw pooled
    record skeletons from it during lazy delivery and recycle it when
    the delivery returns; see [Pbio.Arena] for the lifetime rules. *)
val arena : t -> Arena.t
