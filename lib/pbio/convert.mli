(** Structural format conversion, compiled once per format pair.

    This is the PBIO piece of "dynamic code generation": given the wire
    format of an incoming record and the (different) format the receiver
    registered, {!compile} produces a specialised closure chain in which
    every field-name lookup, type dispatch and coercion has been resolved
    ahead of time.  Per message, only direct calls remain.

    Semantics follow the paper's imperfect-match step (Algorithm 2, lines
    26-29): fields are matched by name; target fields missing from the
    source take their default values; source fields absent from the target
    are dropped; numeric types coerce, enums map by case name, nested
    records and arrays recurse; target length fields are re-synchronised. *)

type conv = Value.t -> Value.t

(** [compile ~from_ ~into] builds the specialised converter.  The plan is
    reusable across any number of messages of the [from_] format. *)
val compile : from_:Ptype.record -> into:Ptype.record -> conv

(** One-shot conversion (compiles, then applies).  [Error (`Type _)] when
    the value does not conform to [from_]. *)
val convert :
  from_:Ptype.record -> into:Ptype.record -> Value.t -> (Value.t, Err.t) result

val convert_exn : from_:Ptype.record -> into:Ptype.record -> Value.t -> Value.t
[@@deprecated "use convert"]
(** Raises [Value.Type_error]. *)

(** A conversion is unnecessary exactly when the formats are structurally
    equal. *)
val is_identity : from_:Ptype.record -> into:Ptype.record -> bool

(** Coercion between basic types, or [None] when no sensible coercion
    exists (the target field then takes its default). *)
val coerce_basic : Ptype.basic -> Ptype.basic -> conv option

(** Point the converter's instrumentation ([convert.compiles] counter,
    [convert.compile_ns] histogram) at a registry.  Defaults to
    {!Obs.null}. *)
val set_metrics : Obs.t -> unit
