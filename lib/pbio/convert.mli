(** Structural format conversion, compiled once per format pair.

    This is the PBIO piece of "dynamic code generation": given the wire
    format of an incoming record and the (different) format the receiver
    registered, {!compile} produces a specialised closure chain in which
    every field-name lookup, type dispatch and coercion has been resolved
    ahead of time.  Per message, only direct calls remain.

    Semantics follow the paper's imperfect-match step (Algorithm 2, lines
    26-29): fields are matched by name; target fields missing from the
    source take their default values; source fields absent from the target
    are dropped; numeric types coerce, enums map by case name, nested
    records and arrays recurse; target length fields are re-synchronised. *)

type conv = Value.t -> Value.t

(** [compile ~from_ ~into] builds the specialised converter.  The plan is
    reusable across any number of messages of the [from_] format.  Always
    compiles afresh — callers with a plan cache (e.g. [Morph.Receiver],
    [Pbio.Codec]) use this; one-shot callers should prefer {!convert},
    which memoizes per format pair. *)
val compile : from_:Ptype.record -> into:Ptype.record -> conv

(** {1 Memoized one-shot conversion}

    A {!memo} is the convert component of a [Pbio.Ctx.t] capability: a
    bounded, mutex-guarded table of compiled converters keyed by
    structurally equal [(from_, into)] pairs.  Safe to share across
    domains; the compiled closures themselves are immutable and run
    lock-free. *)

type memo

(** A fresh, empty, independent memo. *)
val create_memo : unit -> memo

(** The process-default memo, used whenever no explicit [?memo] (or
    enclosing [Pbio.Ctx.t]) is given — the compatibility shim for the
    pre-context global table. *)
val default_memo : memo

(** One-shot conversion.  The compiled plan is memoized in [memo]
    (default {!default_memo}), so repeated calls compile once
    ([convert.compiles] stays flat).  [Error (`Type _)] when the value does
    not conform to [from_]. *)
val convert :
  ?memo:memo ->
  from_:Ptype.record -> into:Ptype.record -> Value.t -> (Value.t, Err.t) result

(** Drop all memoized conversion plans (tests and long-lived fuzz drivers). *)
val reset_cache : ?memo:memo -> unit -> unit

(** A conversion is unnecessary exactly when the formats are structurally
    equal. *)
val is_identity : from_:Ptype.record -> into:Ptype.record -> bool

(** Coercion between basic types, or [None] when no sensible coercion
    exists (the target field then takes its default).  Enum lookups are
    resolved through hash tables built when the coercion is compiled. *)
val coerce_basic : Ptype.basic -> Ptype.basic -> conv option

(** Conversion between two types, or [None] when the shapes are
    incompatible (the target field then takes its default).  Building
    block for fused plans ({!Codec.compile_morph}). *)
val compile_type : Ptype.t -> Ptype.t -> conv option

(** Default-value thunk for a field, honouring declared constant defaults;
    immutable scalars are shared, complex values copied per call. *)
val field_default : Ptype.field -> unit -> Value.t

(** Point the converter's process-wide instrumentation
    ([convert.compiles] counter, [convert.compile_ns] histogram) at a
    registry.  Defaults to {!Obs.null}.  Deprecated: the global
    registration is not domain-safe. *)
val set_metrics : Obs.t -> unit
  [@@deprecated "use a per-component Obs registry: the process-global \
                 metrics registration is not domain-safe"]
