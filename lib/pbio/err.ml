type t =
  [ `Decode of string
  | `Encode of string
  | `Frame of string
  | `Meta of string
  | `Type of string
  | `Xform of string
  | `No_match of string
  | `Config of string
  | `Internal of string ]

let tag : t -> string = function
  | `Decode _ -> "decode"
  | `Encode _ -> "encode"
  | `Frame _ -> "frame"
  | `Meta _ -> "meta"
  | `Type _ -> "type"
  | `Xform _ -> "xform"
  | `No_match _ -> "no_match"
  | `Config _ -> "config"
  | `Internal _ -> "internal"

let message : t -> string = function
  | `Decode m | `Encode m | `Frame m | `Meta m | `Type m | `Xform m
  | `No_match m | `Config m | `Internal m ->
    m

let to_string e = tag e ^ ": " ^ message e
let pp ppf e = Format.pp_print_string ppf (to_string e)
let msg = function Ok _ as ok -> ok | Error e -> Error (to_string e)
