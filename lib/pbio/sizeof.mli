(** Size accounting for Table 1 of the paper. *)

(** [unencoded fmt v] models the in-memory ("unencoded") size in bytes of a
    C data-structure block holding the message: 4-byte ints, unsigneds,
    booleans and enums, 8-byte doubles, 1-byte chars, strings as their
    bytes plus a NUL terminator, arrays as their elements.  The baseline
    row of Table 1. *)
val unencoded : Ptype.record -> Value.t -> int

val unencoded_type : Ptype.t -> Value.t -> int

(** Exact wire-payload size, without encoding; agrees with {!Wire.encode}
    (property-tested). *)
val wire_payload : Ptype.record -> Value.t -> int

val wire_payload_type : Ptype.t -> Value.t -> int

(** [static_wire_bound fmt] is a lower bound on the wire-payload size of
    any value conforming to [fmt], computed from the format alone: strings
    contribute their 4-byte length prefix, variable arrays nothing.  The
    boolean is [true] when the bound is exact for every conforming value
    (no strings or variable arrays anywhere in the format).  Used by the
    compiled encoder to pre-size its scratch buffer. *)
val static_wire_bound : Ptype.record -> int * bool

val static_bound_type : Ptype.t -> int * bool

(** {1 Modelled C sizes} *)

val c_int : int
val c_float : int
val c_char : int
val c_bool : int
val c_enum : int
