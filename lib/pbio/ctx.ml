(* The capability value threaded through the morphing stack: everything
   that used to be ambient process-global mutable state (the codec plan
   cache, the convert memo, the metrics registry wire/receiver record
   into) bundled into one explicit, passable value.

   Domain model: the caches inside a ctx are lock-striped/mutex-guarded
   and safe to share across domains; the Obs registry is NOT — a
   registry must be owned by one domain.  A ctx shared by several
   domains should therefore carry [Obs.null] (the default) and let each
   shard keep its own registry, merged at scrape time with
   [Obs.merge_into].  See docs/CONCURRENCY.md. *)

type t = {
  obs : Obs.t;
  codecs : Codec.cache;
  convs : Convert.memo;
  (* Arenas are the one per-DOMAIN component: an arena has no lock, so a
     ctx shared across domains hands each domain its own instance
     through DLS — [--domains N] sharding gets domain-local arenas with
     zero sharing by construction, and a single-domain ctx sees one
     stable arena. *)
  arenas : Arena.t Domain.DLS.key;
}

let fresh_arenas () = Domain.DLS.new_key (fun () -> Arena.create ())

let create ?(metrics = Obs.null) ?max_plans ?stripes () =
  {
    obs = metrics;
    codecs = Codec.create_cache ~metrics ?max_plans ?stripes ();
    convs = Convert.create_memo ();
    arenas = fresh_arenas ();
  }

let v ?(metrics = Obs.null) ~codecs ~convs () =
  { obs = metrics; codecs; convs; arenas = fresh_arenas () }

(* The compatibility shim: the ctx the no-argument code paths run in.
   Its caches are the pre-context process globals, so legacy calls and
   ctx-threaded calls over [default] observe the same cache state. *)
let default =
  { obs = Obs.null; codecs = Codec.default_cache; convs = Convert.default_memo;
    arenas = fresh_arenas () }

let obs t = t.obs
let codecs t = t.codecs
let convs t = t.convs
let arena t = Domain.DLS.get t.arenas
