(* Binary wire codec for PBIO records.

   Message layout:
     header (16 bytes):
       magic   "PBIO"            4 bytes
       endian  0 = LE, 1 = BE    1 byte
       version                   1 byte
       reserved                  2 bytes
       format id                 4 bytes (unsigned, sender-local)
       payload length            4 bytes (unsigned)
     payload: fields in declaration order.
       int/uint  4 bytes        float  8 bytes (IEEE 754)
       char      1 byte         bool   1 byte
       enum      4 bytes        string 4-byte length + bytes
       record    fields inline
       array     elements inline; a variable array's count is the value of
                 its (earlier) length field, a fixed array's count is static.

   The sender writes in its native byte order (PBIO's "native data
   representation"); the receiver byte-swaps only when orders differ. *)

type endian = Little | Big

exception Encode_error of string
exception Decode_error of string

let encode_error fmt = Fmt.kstr (fun s -> raise (Encode_error s)) fmt
let decode_error fmt = Fmt.kstr (fun s -> raise (Decode_error s)) fmt

let header_size = 16
let magic = "PBIO"
let wire_version = 1

type header = {
  endian : endian;
  format_id : int;
  payload_len : int;
}

(* --- primitive writers ------------------------------------------------- *)

let int32_min = -0x8000_0000
let int32_max = 0x7fff_ffff
let uint32_max = 0xffff_ffff

let add_i32 endian buf n =
  if n < int32_min || n > int32_max then encode_error "int %d out of 32-bit range" n;
  let x = Int32.of_int n in
  match endian with
  | Little -> Buffer.add_int32_le buf x
  | Big -> Buffer.add_int32_be buf x

let add_u32 endian buf n =
  if n < 0 || n > uint32_max then encode_error "unsigned %d out of 32-bit range" n;
  let x = Int32.of_int (if n > int32_max then n - (uint32_max + 1) else n) in
  match endian with
  | Little -> Buffer.add_int32_le buf x
  | Big -> Buffer.add_int32_be buf x

let add_f64 endian buf x =
  let bits = Int64.bits_of_float x in
  match endian with
  | Little -> Buffer.add_int64_le buf bits
  | Big -> Buffer.add_int64_be buf bits

(* --- primitive readers ------------------------------------------------- *)

type cursor = {
  data : string;
  mutable pos : int;
  limit : int;
}

let need cur n =
  if cur.pos + n > cur.limit then
    decode_error "truncated message: need %d bytes at offset %d (limit %d)" n cur.pos cur.limit

let read_i32 endian cur =
  need cur 4;
  let x =
    match endian with
    | Little -> String.get_int32_le cur.data cur.pos
    | Big -> String.get_int32_be cur.data cur.pos
  in
  cur.pos <- cur.pos + 4;
  Int32.to_int x

let read_u32 endian cur =
  let n = read_i32 endian cur in
  if n < 0 then n + uint32_max + 1 else n

let read_f64 endian cur =
  need cur 8;
  let bits =
    match endian with
    | Little -> String.get_int64_le cur.data cur.pos
    | Big -> String.get_int64_be cur.data cur.pos
  in
  cur.pos <- cur.pos + 8;
  Int64.float_of_bits bits

let read_byte cur =
  need cur 1;
  let c = cur.data.[cur.pos] in
  cur.pos <- cur.pos + 1;
  c

let read_bytes cur n =
  need cur n;
  let s = String.sub cur.data cur.pos n in
  cur.pos <- cur.pos + n;
  s

(* --- payload encoding --------------------------------------------------- *)

let rec encode_type endian buf (ty : Ptype.t) (v : Value.t) : unit =
  match ty, v with
  | Ptype.Basic Int, Value.Int n -> add_i32 endian buf n
  | Basic Uint, Uint n -> add_u32 endian buf n
  | Basic Float, Float x -> add_f64 endian buf x
  | Basic Char, Char c -> Buffer.add_char buf c
  | Basic Bool, Bool b -> Buffer.add_char buf (if b then '\x01' else '\x00')
  | Basic (Enum _), Enum (_, n) -> add_i32 endian buf n
  | Basic String, String s ->
    add_u32 endian buf (String.length s);
    Buffer.add_string buf s
  | Record r, (Record _ as v) -> encode_record endian buf r v
  | Array { elem; size }, (Array _ as v) ->
    let n = Value.array_len v in
    (match size with
     | Fixed k when k <> n -> encode_error "fixed array expects %d elements, value has %d" k n
     | Fixed _ | Length_field _ -> ());
    for i = 0 to n - 1 do
      encode_type endian buf elem (Value.array_get v i)
    done
  | _, _ ->
    encode_error "value %s does not match field type %a"
      (Value.to_string v) Ptype.pp_type ty

and encode_record endian buf (r : Ptype.record) (v : Value.t) : unit =
  let es = Value.entries v in
  if Array.length es <> List.length r.fields then
    encode_error "record %s: value has %d fields, format declares %d"
      r.rname (Array.length es) (List.length r.fields);
  List.iteri
    (fun i (f : Ptype.field) ->
       let e = es.(i) in
       if e.Value.name <> f.fname then
         encode_error "record %s: field %d is %S in value but %S in format"
           r.rname i e.Value.name f.fname;
       (* Enforce the wire invariant: a variable array's length field holds
          the actual element count, since no count travels on the wire. *)
       (match f.ftype with
        | Array { size = Length_field lf; _ } ->
          let declared = Value.to_int (Value.get_field v lf) in
          let actual = Value.array_len e.Value.v in
          if declared <> actual then
            encode_error
              "record %s: length field %S = %d but array %S has %d elements \
               (call Value.sync_lengths before encoding)"
              r.rname lf declared f.fname actual
        | _ -> ());
       encode_type endian buf f.ftype e.Value.v)
    r.fields

let encode_payload ?(endian = Little) (r : Ptype.record) (v : Value.t) : string =
  let buf = Buffer.create 256 in
  encode_record endian buf r v;
  Buffer.contents buf

let encode_core ?(endian = Little) ~format_id (r : Ptype.record) (v : Value.t) : string =
  let payload = encode_payload ~endian r v in
  let buf = Buffer.create (header_size + String.length payload) in
  Buffer.add_string buf magic;
  Buffer.add_char buf (match endian with Little -> '\x00' | Big -> '\x01');
  Buffer.add_char buf (Char.chr wire_version);
  Buffer.add_string buf "\x00\x00";
  add_u32 endian buf format_id;
  add_u32 endian buf (String.length payload);
  Buffer.add_string buf payload;
  Buffer.contents buf

(* --- payload decoding --------------------------------------------------- *)

(* Minimum wire footprint of one value of a type: used to reject corrupted
   length fields before allocating huge element arrays. *)
let rec min_wire_size (ty : Ptype.t) : int =
  match ty with
  | Ptype.Basic (Int | Uint | Enum _ | String) -> 4
  | Basic Float -> 8
  | Basic (Char | Bool) -> 1
  | Record r ->
    List.fold_left (fun acc (f : Ptype.field) -> acc + min_wire_size f.ftype) 0 r.fields
  | Array { elem; size = Fixed k } -> max k 0 * min_wire_size elem
  | Array { size = Length_field _; _ } -> 0

let rec decode_type endian cur (ty : Ptype.t) ~(length_of : string -> int) : Value.t =
  match ty with
  | Ptype.Basic Int -> Value.Int (read_i32 endian cur)
  | Basic Uint -> Value.Uint (read_u32 endian cur)
  | Basic Float -> Value.Float (read_f64 endian cur)
  | Basic Char -> Value.Char (read_byte cur)
  | Basic Bool -> Value.Bool (read_byte cur <> '\x00')
  | Basic (Enum e) ->
    let n = read_i32 endian cur in
    let case =
      match List.find_opt (fun (_, v) -> v = n) e.cases with
      | Some (c, _) -> c
      | None -> decode_error "enum %s: unknown value %d" e.ename n
    in
    Value.Enum (case, n)
  | Basic String ->
    let n = read_u32 endian cur in
    if n > cur.limit - cur.pos then decode_error "string length %d exceeds message" n;
    Value.String (read_bytes cur n)
  | Record r -> decode_record_inner endian cur r
  | Array { elem; size } ->
    (* Both size sources are untrusted here: length fields come off the wire
       and fixed sizes may come from a hostile format description (shipped
       meta-data), so both are bounds-checked before any allocation. *)
    let check_len ~what n =
      if n < 0 then decode_error "negative array length %d for %s" n what;
      let remaining = cur.limit - cur.pos in
      let m = min_wire_size elem in
      if (m > 0 && n > remaining / m) || (m = 0 && n > cur.limit) then
        decode_error "array length %d for %s exceeds message size" n what;
      n
    in
    let n =
      match size with
      | Fixed k -> check_len ~what:"fixed-size array" k
      | Length_field name -> check_len ~what:(Printf.sprintf "%S" name) (length_of name)
    in
    let items = Array.init n (fun _ -> decode_type endian cur elem ~length_of) in
    Value.Array { items; len = n; model = Some (Value.default elem) }

and decode_record_inner endian cur (r : Ptype.record) : Value.t =
  let es =
    Array.of_list
      (List.map (fun (f : Ptype.field) -> { Value.name = f.fname; v = Value.Int 0 }) r.fields)
  in
  let length_of name =
    (* Length fields are declared before the arrays that use them (enforced
       by Ptype.validate), so they are already decoded here. *)
    match Value.field_index es name with
    | Some i -> Value.to_int es.(i).Value.v
    | None -> decode_error "record %s: missing length field %S" r.rname name
  in
  List.iteri
    (fun i (f : Ptype.field) -> es.(i).Value.v <- decode_type endian cur f.ftype ~length_of)
    r.fields;
  Value.Record es

let decode_payload_core ?(endian = Little) (r : Ptype.record) (data : string) : Value.t =
  let cur = { data; pos = 0; limit = String.length data } in
  let v = decode_record_inner endian cur r in
  if cur.pos <> cur.limit then
    decode_error "trailing garbage: %d bytes left after record %s" (cur.limit - cur.pos) r.rname;
  v

let read_header_core (data : string) : header =
  if String.length data < header_size then decode_error "message shorter than header";
  if String.sub data 0 4 <> magic then decode_error "bad magic";
  let endian =
    match data.[4] with
    | '\x00' -> Little
    | '\x01' -> Big
    | c -> decode_error "bad endian flag %C" c
  in
  let v = Char.code data.[5] in
  if v <> wire_version then decode_error "unsupported wire version %d" v;
  let cur = { data; pos = 8; limit = String.length data } in
  let format_id = read_u32 endian cur in
  let payload_len = read_u32 endian cur in
  if header_size + payload_len <> String.length data then
    decode_error "payload length %d does not match message size %d"
      payload_len (String.length data - header_size);
  { endian; format_id; payload_len }

let decode_core (r : Ptype.record) (data : string) : Value.t =
  let h = read_header_core data in
  let cur = { data; pos = header_size; limit = String.length data } in
  let v = decode_record_inner h.endian cur r in
  if cur.pos <> cur.limit then
    decode_error "trailing garbage after record %s" r.rname;
  v

(* --- observability ------------------------------------------------------- *)

type metrics = {
  mon : bool;
  mreg : Obs.t;
  encodes : Obs.Counter.h;
  decodes : Obs.Counter.h;
  decode_errors : Obs.Counter.h;
  bytes_out : Obs.Counter.h;
  bytes_in : Obs.Counter.h;
  encode_ns : Obs.Histogram.h;
  decode_ns : Obs.Histogram.h;
}

let make_metrics reg =
  {
    mon = Obs.enabled reg;
    mreg = reg;
    encodes = Obs.Counter.make reg "wire.encodes";
    decodes = Obs.Counter.make reg "wire.decodes";
    decode_errors = Obs.Counter.make reg "wire.decode_errors";
    bytes_out = Obs.Counter.make reg ~unit_:"bytes" "wire.bytes_out";
    bytes_in = Obs.Counter.make reg ~unit_:"bytes" "wire.bytes_in";
    encode_ns = Obs.Histogram.make reg ~unit_:"ns" "wire.encode_ns";
    decode_ns = Obs.Histogram.make reg ~unit_:"ns" "wire.decode_ns";
  }

let metrics = ref (make_metrics Obs.null)
let set_metrics reg = metrics := make_metrics reg

let encode ?endian ~format_id (r : Ptype.record) (v : Value.t) : string =
  let m = !metrics in
  if not m.mon then encode_core ?endian ~format_id r v
  else begin
    let t0 = Obs.now m.mreg in
    let s = encode_core ?endian ~format_id r v in
    Obs.Counter.incr m.encodes;
    Obs.Counter.add m.bytes_out (String.length s);
    Obs.Histogram.observe m.encode_ns (Obs.now m.mreg -. t0);
    s
  end

(* --- public decoding API ------------------------------------------------- *)

(* Raising *_exn compatibility wrappers; the uninstrumented cores are kept
   separate so the metered path only pays clock reads when a live registry
   is installed. *)

let read_header_exn = read_header_core
let decode_payload_exn = decode_payload_core

let decode_exn (r : Ptype.record) (data : string) : Value.t =
  let m = !metrics in
  if not m.mon then decode_core r data
  else begin
    let t0 = Obs.now m.mreg in
    match decode_core r data with
    | v ->
      Obs.Counter.incr m.decodes;
      Obs.Counter.add m.bytes_in (String.length data);
      Obs.Histogram.observe m.decode_ns (Obs.now m.mreg -. t0);
      v
    | exception e ->
      Obs.Counter.incr m.decode_errors;
      raise e
  end

(* Total on untrusted input: every decoding failure — including a type
   error surfaced while interpreting a hostile format description — comes
   back as [Error] instead of an exception. *)

let wrap (f : unit -> 'a) : ('a, Err.t) result =
  match f () with
  | v -> Ok v
  | exception Decode_error msg -> Error (`Decode msg)
  | exception Value.Type_error msg -> Error (`Type msg)

let read_header data = wrap (fun () -> read_header_core data)
let decode r data = wrap (fun () -> decode_exn r data)
let decode_payload ?endian r data = wrap (fun () -> decode_payload_core ?endian r data)

let read_header_result data = Err.msg (read_header data)
let decode_result r data = Err.msg (decode r data)
let decode_payload_result ?endian r data = Err.msg (decode_payload ?endian r data)
