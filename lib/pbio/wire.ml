(* Binary wire codec for PBIO records — public, instrumented entry points.

   Message layout:
     header (16 bytes):
       magic   "PBIO"            4 bytes
       endian  0 = LE, 1 = BE    1 byte
       version                   1 byte
       reserved                  2 bytes
       format id                 4 bytes (unsigned, sender-local)
       payload length            4 bytes (unsigned)
     payload: fields in declaration order.
       int/uint  4 bytes        float  8 bytes (IEEE 754)
       char      1 byte         bool   1 byte
       enum      4 bytes        string 4-byte length + bytes
       record    fields inline
       array     elements inline; a variable array's count is the value of
                 its (earlier) length field, a fixed array's count is static.

   The sender writes in its native byte order (PBIO's "native data
   representation"); the receiver byte-swaps only when orders differ.

   The actual encoding/decoding lives in [Codec]: each call here pulls a
   compiled plan from the bounded per-format cache (building it on first
   use) and runs it.  The per-field interpreter survives as
   [Codec.Interp], the differential-testing reference. *)

type endian = Codec.endian = Little | Big

exception Encode_error = Codec.Encode_error
exception Decode_error = Codec.Decode_error

let header_size = Codec.header_size
let magic = Codec.magic
let wire_version = Codec.wire_version

type header = Codec.header = {
  endian : endian;
  format_id : int;
  payload_len : int;
}

let min_wire_size = Codec.min_wire_size

(* --- observability ------------------------------------------------------- *)

type metrics = {
  mon : bool;
  mreg : Obs.t;
  encodes : Obs.Counter.h;
  decodes : Obs.Counter.h;
  decode_errors : Obs.Counter.h;
  bytes_out : Obs.Counter.h;
  bytes_in : Obs.Counter.h;
  encode_ns : Obs.Histogram.h;
  decode_ns : Obs.Histogram.h;
}

let make_metrics reg =
  {
    mon = Obs.enabled reg;
    mreg = reg;
    encodes = Obs.Counter.make reg "wire.encodes";
    decodes = Obs.Counter.make reg "wire.decodes";
    decode_errors = Obs.Counter.make reg "wire.decode_errors";
    bytes_out = Obs.Counter.make reg ~unit_:"bytes" "wire.bytes_out";
    bytes_in = Obs.Counter.make reg ~unit_:"bytes" "wire.bytes_in";
    encode_ns = Obs.Histogram.make reg ~unit_:"ns" "wire.encode_ns";
    decode_ns = Obs.Histogram.make reg ~unit_:"ns" "wire.decode_ns";
  }

let metrics = ref (make_metrics Obs.null)
let set_metrics reg = metrics := make_metrics reg

(* Per-ctx metric handles, minted on first use against the ctx's Obs
   registry.  The memo is domain-local: handle records are cheap to mint
   and re-minting per domain keeps registry interning single-domain (a
   registry is owned by one domain; see docs/CONCURRENCY.md).  The list
   is bounded — callers cycle through a handful of contexts, not
   thousands. *)
let ctx_metrics_key : (Ctx.t * metrics) list Domain.DLS.key =
  Domain.DLS.new_key (fun () -> [])

let metrics_for (ctx : Ctx.t option) : metrics =
  match ctx with
  | None -> !metrics
  | Some c ->
    let l = Domain.DLS.get ctx_metrics_key in
    (match List.find_opt (fun (c0, _) -> c0 == c) l with
     | Some (_, m) -> m
     | None ->
       let m = make_metrics (Ctx.obs c) in
       let l = List.filteri (fun i _ -> i < 7) l in
       Domain.DLS.set ctx_metrics_key ((c, m) :: l);
       m)

let cache_of (ctx : Ctx.t option) : Codec.cache option =
  match ctx with None -> None | Some c -> Some (Ctx.codecs c)

(* --- encoding ------------------------------------------------------------- *)

let encode_payload ?ctx ?(endian = Little) (r : Ptype.record) (v : Value.t) :
  string =
  Codec.encode_payload (Codec.encoder_for ?cache:(cache_of ctx) ~endian r) v

let encode_core ?ctx ?(endian = Little) ~format_id (r : Ptype.record)
    (v : Value.t) : string =
  Codec.encode_message
    (Codec.encoder_for ?cache:(cache_of ctx) ~endian r)
    ~format_id v

let encode ?ctx ?endian ~format_id (r : Ptype.record) (v : Value.t) : string =
  let m = metrics_for ctx in
  if not m.mon then encode_core ?ctx ?endian ~format_id r v
  else begin
    let t0 = Obs.now m.mreg in
    let s = encode_core ?ctx ?endian ~format_id r v in
    Obs.Counter.incr m.encodes;
    Obs.Counter.add m.bytes_out (String.length s);
    Obs.Histogram.observe m.encode_ns (Obs.now m.mreg -. t0);
    s
  end

(* --- decoding ------------------------------------------------------------- *)

let decode_payload_core ?ctx ?(endian = Little) (r : Ptype.record)
    (data : string) : Value.t =
  Codec.decode_payload (Codec.decoder_for ?cache:(cache_of ctx) ~endian r) data

let decode_core ?ctx (r : Ptype.record) (data : string) : Value.t =
  let h = Codec.read_header data in
  Codec.decode_payload
    (Codec.decoder_for ?cache:(cache_of ctx) ~endian:h.endian r)
    ~pos:header_size data

let decode_raise ?ctx (r : Ptype.record) (data : string) : Value.t =
  let m = metrics_for ctx in
  if not m.mon then decode_core ?ctx r data
  else begin
    let t0 = Obs.now m.mreg in
    match decode_core ?ctx r data with
    | v ->
      Obs.Counter.incr m.decodes;
      Obs.Counter.add m.bytes_in (String.length data);
      Obs.Histogram.observe m.decode_ns (Obs.now m.mreg -. t0);
      v
    | exception e ->
      Obs.Counter.incr m.decode_errors;
      raise e
  end

(* Total on untrusted input: every decoding failure — including a type
   error surfaced while interpreting a hostile format description — comes
   back as [Error] instead of an exception. *)

let wrap (f : unit -> 'a) : ('a, Err.t) result =
  match f () with
  | v -> Ok v
  | exception Decode_error msg -> Error (`Decode msg)
  | exception Value.Type_error msg -> Error (`Type msg)

let read_header data = wrap (fun () -> Codec.read_header data)
let decode ?ctx r data = wrap (fun () -> decode_raise ?ctx r data)

let decode_payload ?ctx ?endian r data =
  wrap (fun () -> decode_payload_core ?ctx ?endian r data)
