(** Zero-copy byte slices over Bigarray storage.

    A {!t} is an immutable window [(off, len)] into a shared
    [Bigarray.Array1] of bytes.  {!sub} produces further windows without
    copying, so a received frame can be carved into envelope, header and
    payload views that all alias one buffer.  The buffer lives outside
    the OCaml minor heap: carving views allocates only the small view
    record, never the bytes.

    Boundary shims: the simulated transport still traffics in [string]s,
    so {!of_string} performs the one copy at the API boundary; a slice
    handed onward is never copied again ([sub], cursor reads and the
    compiled lazy plans in {!Codec} all run over the shared buffer).
    Lifetime rule: a slice borrows its buffer — holding a slice (or a
    [Value.String] carved out of one via {!sub_string}, which copies)
    past the delivery that produced it is safe, but holding arena-pooled
    record cells is not; see docs/PERFORMANCE.md. *)

type buffer =
  (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

type t

(** Copying constructor: the shim at the [string] API boundary. *)
val of_string : string -> t

(** [of_bytes b] copies, like {!of_string} ([b] may be reused after). *)
val of_bytes : bytes -> t

(** Wrap an existing buffer without copying.  Raises [Invalid_argument]
    when [(off, len)] does not fit the buffer.  Defaults: the whole
    buffer. *)
val of_buffer : ?off:int -> ?len:int -> buffer -> t

val length : t -> int

(** [sub s ~pos ~len] is a zero-copy sub-view.  Raises
    [Invalid_argument] when [(pos, len)] does not fit [s]. *)
val sub : t -> pos:int -> len:int -> t

(** Bounds-checked byte read; raises [Invalid_argument] out of range. *)
val get : t -> int -> char

(** Unchecked byte read — callers must have bounds-checked the access
    (the compiled codec plans check once per primitive, not per byte). *)
val unsafe_get : t -> int -> char

(** Copying extraction (a decoded [Value.String] owns its bytes). *)
val sub_string : t -> pos:int -> len:int -> string

val to_string : t -> string

(** {1 Primitive reads}

    Multi-byte reads are assembled from byte loads ([Bigarray] has no
    fixed-width accessors); all are {e unchecked} like {!unsafe_get} —
    the caller guarantees [pos .. pos+width-1] is in range.  [i32]
    results are sign-extended to the native [int]. *)

val i32_le : t -> int -> int
val i32_be : t -> int -> int
val i64_le : t -> int -> int64
val i64_be : t -> int -> int64

(** Structural equality of contents. *)
val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
