(** Unified error surface for the morphing stack.

    Every decode/convert/morph entry point across the libraries returns
    [('a, Err.t) result] with this one error type, so call sites can
    pattern-match on the failure class without knowing which layer
    produced it.  The payload is always a human-readable message; the
    tag says which contract was violated. *)

type t =
  [ `Decode of string   (** malformed or truncated wire message *)
  | `Encode of string   (** value does not fit the declared format *)
  | `Frame of string    (** transport framing violation *)
  | `Meta of string     (** malformed or inconsistent format meta-data *)
  | `Type of string     (** value/type mismatch during conversion *)
  | `Xform of string    (** transformation failed to compile or run *)
  | `No_match of string (** receiver found no acceptable morph path *)
  | `Config of string   (** out-of-range or contradictory configuration *)
  | `Internal of string (** invariant violation; please report *) ]

val tag : t -> string
(** The variant name, lowercased: ["decode"], ["no_match"], ... *)

val message : t -> string
(** The payload, without the tag. *)

val to_string : t -> string
(** ["tag: message"]. *)

val pp : Format.formatter -> t -> unit

val msg : ('a, t) result -> ('a, string) result
(** Flatten the error to its {!to_string} rendering, for callers that
    only want a printable message. *)
