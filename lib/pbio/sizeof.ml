(* Size accounting for Table 1 of the paper.

   [unencoded] models the in-memory ("unencoded") size of a C data-structure
   block holding the message: 4-byte ints, unsigneds, booleans and enums,
   8-byte doubles, 1-byte chars, strings as their bytes plus a NUL
   terminator, variable arrays as their elements (the length lives in its
   own integer field).  This is the baseline row of Table 1. *)

let c_int = 4
let c_float = 8
let c_char = 1
let c_bool = 4
let c_enum = 4

let rec unencoded_type (ty : Ptype.t) (v : Value.t) : int =
  match ty with
  | Basic Int | Basic Uint -> c_int
  | Basic Float -> c_float
  | Basic Char -> c_char
  | Basic Bool -> c_bool
  | Basic (Enum _) -> c_enum
  | Basic String -> String.length (Value.to_string_exn v) + 1
  | Record r -> unencoded r v
  | Array { elem; _ } ->
    let n = Value.array_len v in
    let acc = ref 0 in
    for i = 0 to n - 1 do
      acc := !acc + unencoded_type elem (Value.array_get v i)
    done;
    !acc

and unencoded (r : Ptype.record) (v : Value.t) : int =
  List.fold_left
    (fun acc (f : Ptype.field) -> acc + unencoded_type f.ftype (Value.get_field v f.fname))
    0 r.fields

(* Wire ("PBIO encoded") size: header plus payload, computed without
   actually encoding.  Must agree with [Wire.encode]; a test enforces it. *)

let rec wire_payload_type (ty : Ptype.t) (v : Value.t) : int =
  match ty with
  | Basic Int | Basic Uint -> 4
  | Basic Float -> 8
  | Basic Char -> 1
  | Basic Bool -> 1
  | Basic (Enum _) -> 4
  | Basic String -> 4 + String.length (Value.to_string_exn v)
  | Record r -> wire_payload r v
  | Array { elem; _ } ->
    (* Variable arrays carry no count on the wire: the count is the value of
       the sibling length field, which is encoded as an ordinary integer. *)
    let n = Value.array_len v in
    let acc = ref 0 in
    for i = 0 to n - 1 do
      acc := !acc + wire_payload_type elem (Value.array_get v i)
    done;
    !acc

and wire_payload (r : Ptype.record) (v : Value.t) : int =
  List.fold_left
    (fun acc (f : Ptype.field) -> acc + wire_payload_type f.ftype (Value.get_field v f.fname))
    0 r.fields

(* Static lower bound on the wire-payload size of any value of a format,
   without a value in hand: strings contribute their 4-byte length prefix,
   variable arrays nothing.  The [exact] flag reports whether the bound is
   in fact the exact size for every conforming value (no strings, no
   variable arrays anywhere).  Used by the compiled encoder to pre-size its
   scratch buffer. *)
let rec static_bound_type (ty : Ptype.t) : int * bool =
  match ty with
  | Ptype.Basic (Int | Uint | Enum _) -> (4, true)
  | Basic Float -> (8, true)
  | Basic (Char | Bool) -> (1, true)
  | Basic String -> (4, false)
  | Record r -> static_wire_bound r
  | Array { elem; size = Fixed k } ->
    let m, e = static_bound_type elem in
    (max k 0 * m, e)
  | Array { size = Length_field _; _ } -> (0, false)

and static_wire_bound (r : Ptype.record) : int * bool =
  List.fold_left
    (fun (acc, exact) (f : Ptype.field) ->
       let m, e = static_bound_type f.ftype in
       (acc + m, exact && e))
    (0, true) r.fields
