(* The gateway's shared plan cache: one bounded, cost-aware store across
   every tenant.

   Three limits interact:
     - [max_entries]: total live entries, the memory bound;
     - [max_cost]: total cost units (compile weight) held, so a few huge
       plans cannot crowd out hundreds of cheap ones unnoticed;
     - [tenant_quota]: per-tenant entry cap, so one tenant churning
       through formats evicts its own plans, not its neighbours'.

   Recency is a lazy-deletion LRU (same scheme as the [Codec] plan cache):
   each touch stamps the entry and pushes it on a queue; eviction pops
   until a stamp still matches.  Per-tenant eviction scans only that
   tenant's entries (at most [tenant_quota] of them). *)

type 'v entry = {
  e_tenant : int;
  e_key : int;
  e_value : 'v;
  e_cost : float;
  mutable e_tick : int;
  mutable e_alive : bool;
}

type stats = {
  entries : int;
  cost : float;
  high_water : int;
  hits : int;
  misses : int;
  evictions : int;
  quota_evictions : int;
}

type 'v t = {
  max_entries : int;
  max_cost : float;
  tenant_quota : int;
  on_evict : (tenant:int -> key:int -> unit) option;
  table : (int * int, 'v entry) Hashtbl.t;
  queue : ('v entry * int) Queue.t;
  by_tenant : (int, 'v entry list ref) Hashtbl.t;
  mutable count : int;
  mutable total_cost : float;
  mutable clock : int;
  mutable high_water : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable quota_evictions : int;
}

let create ?(max_entries = 1024) ?(max_cost = infinity) ?(tenant_quota = max_int)
    ?on_evict () =
  if max_entries < 1 then invalid_arg "Plan_cache.create: max_entries must be >= 1";
  if tenant_quota < 1 then invalid_arg "Plan_cache.create: tenant_quota must be >= 1";
  if not (max_cost > 0.) then invalid_arg "Plan_cache.create: max_cost must be > 0";
  {
    max_entries;
    max_cost;
    tenant_quota;
    on_evict;
    table = Hashtbl.create 256;
    queue = Queue.create ();
    by_tenant = Hashtbl.create 64;
    count = 0;
    total_cost = 0.;
    clock = 0;
    high_water = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    quota_evictions = 0;
  }

let size t = t.count
let cost t = t.total_cost
let high_water t = t.high_water

let stats t =
  {
    entries = t.count;
    cost = t.total_cost;
    high_water = t.high_water;
    hits = t.hits;
    misses = t.misses;
    evictions = t.evictions;
    quota_evictions = t.quota_evictions;
  }

let tenant_entries t tenant =
  match Hashtbl.find_opt t.by_tenant tenant with
  | None -> []
  | Some l ->
    (* prune dead entries while we are here *)
    let live = List.filter (fun e -> e.e_alive) !l in
    l := live;
    live

let tenant_count t tenant = List.length (tenant_entries t tenant)

let compact t =
  let q' = Queue.create () in
  Queue.iter
    (fun ((e, tk) as pair) -> if e.e_alive && e.e_tick = tk then Queue.push pair q')
    t.queue;
  Queue.clear t.queue;
  Queue.transfer q' t.queue

let touch t e =
  t.clock <- t.clock + 1;
  e.e_tick <- t.clock;
  Queue.push (e, t.clock) t.queue;
  if Queue.length t.queue > (4 * t.count) + 64 then compact t

let find t ~tenant ~key =
  match Hashtbl.find_opt t.table (tenant, key) with
  | Some e when e.e_alive ->
    t.hits <- t.hits + 1;
    touch t e;
    Some e.e_value
  | _ ->
    t.misses <- t.misses + 1;
    None

let mem t ~tenant ~key =
  match Hashtbl.find_opt t.table (tenant, key) with
  | Some e -> e.e_alive
  | None -> false

(* Unlink [e] from every index.  [evicted] says whether this removal is an
   eviction (capacity pressure) as opposed to an explicit [remove]. *)
let delete t e ~evicted ~quota =
  if e.e_alive then begin
    e.e_alive <- false;
    Hashtbl.remove t.table (e.e_tenant, e.e_key);
    (match Hashtbl.find_opt t.by_tenant e.e_tenant with
     | Some l -> l := List.filter (fun e' -> e' != e) !l
     | None -> ());
    t.count <- t.count - 1;
    t.total_cost <- t.total_cost -. e.e_cost;
    if evicted then begin
      t.evictions <- t.evictions + 1;
      if quota then t.quota_evictions <- t.quota_evictions + 1;
      match t.on_evict with
      | Some f -> f ~tenant:e.e_tenant ~key:e.e_key
      | None -> ()
    end
  end

(* Evict the globally least-recently-used entry; [false] when empty. *)
let evict_lru t =
  let rec go () =
    match Queue.take_opt t.queue with
    | None -> false
    | Some (e, tk) ->
      if e.e_alive && e.e_tick = tk then begin
        delete t e ~evicted:true ~quota:false;
        true
      end
      else go ()
  in
  go ()

(* Evict [tenant]'s least-recently-used entry (a quota eviction). *)
let evict_tenant_lru t tenant =
  match tenant_entries t tenant with
  | [] -> false
  | e0 :: rest ->
    let lru =
      List.fold_left (fun a e -> if e.e_tick < a.e_tick then e else a) e0 rest
    in
    delete t lru ~evicted:true ~quota:true;
    true

let remove t ~tenant ~key =
  match Hashtbl.find_opt t.table (tenant, key) with
  | Some e -> delete t e ~evicted:false ~quota:false
  | None -> ()

let drop_tenant t tenant =
  let es = tenant_entries t tenant in
  List.iter (fun e -> delete t e ~evicted:false ~quota:false) es;
  Hashtbl.remove t.by_tenant tenant;
  List.length es

let add t ~tenant ~key ~cost v =
  if not (cost >= 0.) then invalid_arg "Plan_cache.add: cost must be >= 0";
  remove t ~tenant ~key;
  (* per-tenant quota first: a tenant over quota pays with its own LRU
     entry, leaving the shared pool alone *)
  while tenant_count t tenant >= t.tenant_quota && evict_tenant_lru t tenant do
    ()
  done;
  (* then the shared bounds *)
  while
    (t.count >= t.max_entries || (t.count > 0 && t.total_cost +. cost > t.max_cost))
    && evict_lru t
  do
    ()
  done;
  let e =
    { e_tenant = tenant; e_key = key; e_value = v; e_cost = cost; e_tick = 0;
      e_alive = true }
  in
  Hashtbl.replace t.table (tenant, key) e;
  let l =
    match Hashtbl.find_opt t.by_tenant tenant with
    | Some l -> l
    | None ->
      let l = ref [] in
      Hashtbl.replace t.by_tenant tenant l;
      l
  in
  l := e :: !l;
  t.count <- t.count + 1;
  t.total_cost <- t.total_cost +. cost;
  if t.count > t.high_water then t.high_water <- t.count;
  touch t e

let clear t =
  Hashtbl.reset t.table;
  Hashtbl.reset t.by_tenant;
  Queue.clear t.queue;
  t.count <- 0;
  t.total_cost <- 0.;
  t.clock <- 0
