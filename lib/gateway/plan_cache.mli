(** Shared, bounded, cost-aware plan cache for the multi-tenant gateway.

    One store across every tenant, with three interacting limits:
    [max_entries] (total live entries — the memory bound), [max_cost]
    (total cost units held, so a few heavy plans cannot silently crowd
    out hundreds of cheap ones) and [tenant_quota] (per-tenant entry cap,
    so a tenant churning through formats evicts its own plans, not its
    neighbours').  Eviction order is least-recently-used, via the same
    lazy-deletion queue scheme as the {!Pbio.Codec} plan cache.

    Not thread-safe; the gateway runs on {!Transport.Netsim}'s
    single-threaded event loop. *)

type 'v t

type stats = {
  entries : int;
  cost : float;
  high_water : int;  (** most entries ever live at once *)
  hits : int;
  misses : int;
  evictions : int;  (** capacity evictions (including quota evictions) *)
  quota_evictions : int;  (** evictions forced by a tenant's own quota *)
}

(** [create ()] — defaults: 1024 entries, unlimited cost, unlimited
    per-tenant quota, no eviction hook.  [on_evict] fires on every
    capacity eviction (not on explicit {!remove}/{!drop_tenant}), e.g. to
    feed the degradation governor.  Raises [Invalid_argument] on
    non-positive limits. *)
val create :
  ?max_entries:int ->
  ?max_cost:float ->
  ?tenant_quota:int ->
  ?on_evict:(tenant:int -> key:int -> unit) ->
  unit ->
  'v t

(** Lookup refreshes recency and counts a hit or miss. *)
val find : 'v t -> tenant:int -> key:int -> 'v option

val mem : 'v t -> tenant:int -> key:int -> bool

(** Insert (replacing any previous value under the same key without
    counting an eviction), evicting first the owning tenant's LRU entries
    down to quota, then the globally least-recently-used entries until
    both shared bounds hold. *)
val add : 'v t -> tenant:int -> key:int -> cost:float -> 'v -> unit

val remove : 'v t -> tenant:int -> key:int -> unit

(** Remove every entry of one tenant (offboarding); returns how many. *)
val drop_tenant : 'v t -> int -> int

val size : 'v t -> int
val cost : 'v t -> float
val high_water : 'v t -> int
val tenant_count : 'v t -> int -> int
val stats : 'v t -> stats
val clear : 'v t -> unit
