(* The compile-budget governor behind the graceful-degradation ladder.

   Plan compilation is the gateway's expensive, bursty cost: a mass schema
   push wants thousands of fresh plans at once.  The governor accounts
   compile cost (in deterministic [Ptype.weight] units — never wall time,
   so seeded runs replay exactly) over a rolling window of simulated time
   and maps the spend to a rung:

     spend <= budget                 -> Fused    (full fast path)
     spend <= interp_over * budget   -> Staged   (skip fused morph plans)
     spend  > interp_over * budget   -> Interp   (no wire plans at all)

   plus a separate overload signal: when the plan cache is thrashing
   (evictions per window above [shed_evictions]), compiling more plans
   only evicts other tenants' plans, so the governor answers Shed for new
   plan work.  Window rolls halve the accumulated spend (exponential
   decay), giving hysteresis: pressure drains gradually instead of the
   rung flapping at the window edge. *)

type rung = Fused | Staged | Interp | Shed

let rung_to_string = function
  | Fused -> "fused"
  | Staged -> "staged"
  | Interp -> "interp"
  | Shed -> "shed"

let rung_level = function Fused -> 0 | Staged -> 1 | Interp -> 2 | Shed -> 3

let pp_rung ppf r = Fmt.string ppf (rung_to_string r)

type config = {
  window_s : float;
  budget : float;
  interp_over : float;
  shed_evictions : int;
}

let default =
  { window_s = 0.05; budget = 500.; interp_over = 3.; shed_evictions = 0 }

type t = {
  cfg : config;
  mutable window_start : float;
  mutable spend : float;
  mutable window_evictions : int;
}

let create ?(now = 0.) (cfg : config) =
  if not (cfg.window_s > 0.) then invalid_arg "Governor.create: window_s must be > 0";
  if not (cfg.budget > 0.) then invalid_arg "Governor.create: budget must be > 0";
  if not (cfg.interp_over >= 1.) then
    invalid_arg "Governor.create: interp_over must be >= 1";
  if cfg.shed_evictions < 0 then
    invalid_arg "Governor.create: shed_evictions must be >= 0";
  { cfg; window_start = now; spend = 0.; window_evictions = 0 }

(* Advance the window to cover [now], halving spend per elapsed window.
   A long idle gap (>= 64 windows) just clears the state — the decayed
   spend would be indistinguishable from zero anyway. *)
let roll t ~now =
  let w = t.cfg.window_s in
  if now -. t.window_start >= 64. *. w then begin
    t.window_start <- now;
    t.spend <- 0.;
    t.window_evictions <- 0
  end
  else
    while now -. t.window_start >= w do
      t.window_start <- t.window_start +. w;
      t.spend <- t.spend /. 2.;
      t.window_evictions <- t.window_evictions / 2
    done

let charge t ~now cost =
  roll t ~now;
  t.spend <- t.spend +. Float.max 0. cost

let note_eviction t ~now =
  roll t ~now;
  t.window_evictions <- t.window_evictions + 1

let rung t ~now =
  roll t ~now;
  if t.cfg.shed_evictions > 0 && t.window_evictions > t.cfg.shed_evictions then
    Shed
  else if t.spend <= t.cfg.budget then Fused
  else if t.spend <= t.cfg.budget *. t.cfg.interp_over then Staged
  else Interp

let spend t ~now =
  roll t ~now;
  t.spend

let window_evictions t ~now =
  roll t ~now;
  t.window_evictions
