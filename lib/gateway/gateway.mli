(** Multi-tenant morphing gateway with overload protection and a
    graceful-degradation ladder (docs/GATEWAY.md).

    A broker-side node multiplexing many tenants over one process: each
    tenant pushes format meta-data (self-describing onboarding), then
    sends {!Transport.Framing.Described} data envelopes; the gateway
    sheds expired/over-quota/circuit-open work {e before} decoding,
    plans morphs into the tenant's target format through one shared
    bounded {!Plan_cache} (singleflight-coalesced compiles), and lets
    the {!Governor} degrade new plan work fused -> staged -> interp ->
    shed under compile pressure.  Every rung decodes and transforms to
    byte-identical results — degradation trades latency, never
    fidelity. *)

module Plan_cache = Plan_cache
module Governor = Governor

(** = {!Governor.rung}. *)
type rung = Governor.rung = Fused | Staged | Interp | Shed

type config = {
  max_plans : int;  (** shared plan-cache entry bound *)
  max_plan_cost : float;  (** shared plan-cache cost bound *)
  tenant_quota : int;  (** per-tenant plan-cache entry quota *)
  admit_rate : float;
      (** per-tenant token-bucket refill, messages per simulated second;
          [0.] disables rate admission *)
  admit_burst : float;  (** token-bucket capacity (>= 1 when rate > 0) *)
  breaker_threshold : int;
      (** consecutive delivery failures that open a tenant's circuit *)
  breaker_cooldown_s : float option;
      (** open -> half-open probe delay; [None] = open circuits stay
          open (the PR-2 permanent-quarantine behaviour) *)
  thresholds : Morph.Maxmatch.thresholds;  (** match acceptance *)
  governor : Governor.config;  (** degradation ladder tuning *)
  compile_s_per_unit : float;
      (** simulated seconds of compile latency per cost unit *)
  pending_cap : int;
      (** max messages parked behind one in-flight compile; overflow is
          shed as {!Overload} *)
  mode_override : rung option;
      (** pin the ladder to one rung (parity testing); [None] = let the
          governor drive *)
  parity : bool;
      (** cross-check every delivery against the interpretive reference
          decoder and count [gateway.parity_mismatches] *)
  lazy_ingress : bool;
      (** run fused-rung deliveries through the lazy-materialisation
          wire plans ({!Pbio.Codec.compile_morph_lazy}): the message is
          viewed as a {!Pbio.Slice.t}, only the fields the morph keeps
          are materialised, and record skeletons come from the creating
          context's arena (recycled after each delivery handler
          returns).  Outcomes and summaries are byte-identical to the
          eager fused path; only the allocation profile changes.
          Handlers must not retain [delivery.value] past their return
          when this is on (docs/PERFORMANCE.md). *)
}

val default_config : config

(** Why a message was shed (before decode, never after). *)
type shed_reason =
  | Deadline  (** envelope deadline already expired *)
  | Quota  (** tenant token bucket empty *)
  | Breaker  (** tenant circuit open *)
  | Overload  (** governor at {!Shed}, or pending queue full *)
  | Unknown_tenant  (** data before any meta push for this tenant *)
  | No_meta  (** fingerprint never pushed by this tenant *)

val shed_reason_to_string : shed_reason -> string

type outcome =
  | Delivered of rung  (** handed to the delivery handler at this rung *)
  | Parked  (** waiting on an in-flight singleflight compile *)
  | Shed of shed_reason
  | Rejected of string  (** decode or transform failure (feeds the breaker) *)
  | Onboarded  (** meta push accepted *)
  | Ignored of string  (** frame the gateway does not terminate *)

type delivery = {
  tenant : int;
  fingerprint : int;
  deadline_ns : int;
  rung : rung;  (** the rung this message actually decoded at *)
  degraded : bool;
      (** [rung] is below the best this plan's shape supports *)
  value : Pbio.Value.t;  (** the message, morphed into the tenant's target *)
}

type stats = {
  mutable meta_pushes : int;
  mutable onboarded : int;  (** tenants created *)
  mutable admitted : int;  (** data messages past all admission gates *)
  mutable delivered : int;
  mutable delivered_fused : int;
  mutable delivered_staged : int;
  mutable delivered_interp : int;
  mutable degraded_deliveries : int;
  mutable shed_deadline : int;
  mutable shed_quota : int;
  mutable shed_breaker : int;
  mutable shed_overload : int;
  mutable shed_unknown : int;
  mutable shed_no_meta : int;
  mutable rejected : int;
  mutable bad_frames : int;
  mutable plan_compiles : int;
  mutable plan_recompiles : int;
      (** compiles for a (tenant, format) that had a plan before — the
          recompile-storm signal *)
  mutable plan_upgrades : int;  (** degraded plans re-compiled upward *)
  mutable singleflight_coalesced : int;
      (** messages parked behind an already-in-flight compile *)
  mutable parity_mismatches : int;
  mutable breaker_trips : int;
  mutable breaker_recoveries : int;  (** half-open probes that re-closed *)
}

val shed_total : stats -> int

type t

(** [create ~net contact handler] builds a gateway that will deliver
    morphed values to [handler]; call {!attach} to register it on the
    network.  [metrics] feeds the [gateway.*] counter/gauge catalogue
    and delivery trace spans.  [ctx] supplies the codec plan cache the
    gateway's fused/staged wire plans are compiled into (shared across
    tenants and with any other user of the context); omitted, plans are
    compiled privately per tenant as before (docs/CONCURRENCY.md).
    [flight] arms an {!Obs.Flight} recorder: breaker trips, shed bursts
    and plan-cache eviction storms each freeze a bounded incident
    capture (spans + metrics snapshot) for post-mortem analysis
    (docs/OBSERVABILITY.md).  Raises [Invalid_argument] on non-positive
    [breaker_threshold]/[pending_cap], negative [compile_s_per_unit], or
    [admit_burst < 1] with a rate set. *)
val create :
  ?config:config ->
  ?metrics:Obs.t ->
  ?ctx:Pbio.Ctx.t ->
  ?flight:Obs.Flight.recorder ->
  net:Transport.Netsim.t ->
  Transport.Contact.t ->
  (delivery -> unit) ->
  t

(** Register the gateway's handler at its contact on the network.
    Undecodable payloads count [bad_frames]; nothing raises. *)
val attach : t -> unit

(** Process one already-decoded frame (tests drive this directly).
    Terminates [Described] and [Traced (Described _)] envelopes —
    anything else is [Ignored]. *)
val handle_frame : t -> Transport.Framing.frame -> outcome

(** Pre-provision a tenant, optionally pinning its delivery target
    format.  Without this, a tenant's first meta push onboards it and
    the pushed lineage base becomes the target. *)
val add_tenant : t -> id:int -> ?target:Pbio.Ptype.record -> unit -> unit

(** Offboard: forget the tenant and drop its cached plans.  [false] if
    unknown. *)
val drop_tenant : t -> int -> bool

(** The routing fingerprint of a format description: what senders put in
    their {!Transport.Framing.Described} envelopes. *)
val fingerprint : Pbio.Meta.format_meta -> int

(** Convenience constructor for the sender side. *)
val envelope :
  tenant:int ->
  fingerprint:int ->
  ?deadline_ns:int ->
  Transport.Framing.frame ->
  Transport.Framing.frame

val contact : t -> Transport.Contact.t
val stats : t -> stats
val cache_stats : t -> Plan_cache.stats

(** Replace the delivery handler. *)
val set_handler : t -> (delivery -> unit) -> unit

val tenant_count : t -> int

(** The ladder rung new plan work would compile at right now. *)
val degrade_rung : t -> rung

(** [None] for an unknown tenant. *)
val breaker_state : t -> int -> Morph.Breaker.state option

(** Tenants whose circuit is not closed. *)
val breakers_open : t -> int

(** Messages currently parked behind in-flight compiles. *)
val pending_depth : t -> int
