(** Compile-budget governor: picks the gateway's current degradation rung.

    Accounts plan-compile cost (deterministic {!Pbio.Ptype.weight} units,
    never wall time) over a rolling window of simulated seconds and maps
    the accumulated spend to a rung of the ladder fused -> staged ->
    interp; a separate plan-cache thrash signal (evictions per window)
    maps to shed.  Window rolls halve the spend — exponential decay — so
    the rung recovers gradually instead of flapping (docs/GATEWAY.md). *)

type rung =
  | Fused  (** compile fused decode->morph plans; full fast path *)
  | Staged  (** compile decode plans only; transform on the value tree *)
  | Interp  (** compile nothing; interpretive decode per message *)
  | Shed  (** don't even plan: shed messages that need a new plan *)

val rung_to_string : rung -> string

(** 0 (fused) .. 3 (shed) — the [gateway.degrade_level] gauge encoding. *)
val rung_level : rung -> int

val pp_rung : Format.formatter -> rung -> unit

type config = {
  window_s : float;  (** accounting window, simulated seconds *)
  budget : float;  (** cost units per window that still allow Fused *)
  interp_over : float;
      (** Staged up to [interp_over * budget] spend, Interp beyond *)
  shed_evictions : int;
      (** plan-cache evictions per window beyond which new plan work is
          Shed; 0 disables the shed rung *)
}

(** 50 ms window, 500 units, interp beyond 3x budget, shed disabled. *)
val default : config

type t

(** Raises [Invalid_argument] on non-positive window or budget,
    [interp_over < 1] or negative [shed_evictions].  [now] anchors the
    first window (default 0). *)
val create : ?now:float -> config -> t

(** Account [cost] units of compile work at time [now]. *)
val charge : t -> now:float -> float -> unit

(** Note one plan-cache eviction at time [now] (cache-thrash signal). *)
val note_eviction : t -> now:float -> unit

(** The rung in effect at time [now]. *)
val rung : t -> now:float -> rung

(** Decayed spend in the current window. *)
val spend : t -> now:float -> float

val window_evictions : t -> now:float -> int
