(* The broker-side morphing gateway: thousands of tenants, one process.

   Each tenant owns a format registry (fingerprint -> meta, fed by
   Described{Meta} pushes) and a target format its deliveries morph into
   (the first pushed lineage base, or whatever [add_tenant] pinned).  The
   robustness machinery around the morphing core:

     - admission: a deadline carried in the Described envelope (work past
       its deadline is shed before any decode), a per-tenant token
       bucket, and a per-tenant circuit breaker over delivery failures;
     - one bounded, cost-aware plan cache shared across tenants
       (Plan_cache: LRU + per-tenant quotas), with singleflight compile
       coalescing so a mass schema push compiles each (tenant, format)
       plan once, not once per queued message;
     - the degradation ladder (Governor): compile pressure moves new
       plans from fused to staged to interpreted; cache thrash sheds new
       plan work entirely.  Already-compiled plans keep delivering at
       their compiled rung — degradation throttles *new* compilation, not
       the hot path.

   Everything runs on Netsim's virtual clock: compiles take simulated
   time proportional to their deterministic cost units, so seeded runs
   replay byte-identically. *)

module Plan_cache = Plan_cache
module Governor = Governor

open Pbio
module Netsim = Transport.Netsim
module Contact = Transport.Contact
module Framing = Transport.Framing
module Breaker = Morph.Breaker
module Maxmatch = Morph.Maxmatch
module Xform = Morph.Xform

type rung = Governor.rung = Fused | Staged | Interp | Shed

(* --- configuration ------------------------------------------------------- *)

type config = {
  max_plans : int;
  max_plan_cost : float;
  tenant_quota : int;
  admit_rate : float;
  admit_burst : float;
  breaker_threshold : int;
  breaker_cooldown_s : float option;
  thresholds : Maxmatch.thresholds;
  governor : Governor.config;
  compile_s_per_unit : float;
  pending_cap : int;
  mode_override : rung option;
  parity : bool;
  lazy_ingress : bool;
}

let default_config =
  {
    max_plans = 1024;
    max_plan_cost = infinity;
    tenant_quota = 8;
    admit_rate = 0.;
    admit_burst = 16.;
    breaker_threshold = 3;
    breaker_cooldown_s = Some 0.05;
    thresholds = Maxmatch.default_thresholds;
    governor = Governor.default;
    compile_s_per_unit = 2e-5;
    pending_cap = 256;
    mode_override = None;
    parity = false;
    lazy_ingress = false;
  }

(* --- outcomes ------------------------------------------------------------ *)

type shed_reason =
  | Deadline  (* envelope deadline already expired *)
  | Quota  (* tenant token bucket empty *)
  | Breaker  (* tenant circuit open *)
  | Overload  (* governor at Shed, or pending queue full *)
  | Unknown_tenant
  | No_meta  (* fingerprint never pushed *)

let shed_reason_to_string = function
  | Deadline -> "deadline"
  | Quota -> "quota"
  | Breaker -> "breaker"
  | Overload -> "overload"
  | Unknown_tenant -> "unknown_tenant"
  | No_meta -> "no_meta"

type outcome =
  | Delivered of rung
  | Parked  (* waiting on an in-flight singleflight compile *)
  | Shed of shed_reason
  | Rejected of string  (* decode or transform failure *)
  | Onboarded  (* meta push accepted *)
  | Ignored of string  (* frame the gateway does not terminate *)

type delivery = {
  tenant : int;
  fingerprint : int;
  deadline_ns : int;
  rung : rung;
  degraded : bool;
  value : Value.t;
}

(* --- mutable stats (mirrored to Obs when a registry is attached) --------- *)

type stats = {
  mutable meta_pushes : int;
  mutable onboarded : int;
  mutable admitted : int;
  mutable delivered : int;
  mutable delivered_fused : int;
  mutable delivered_staged : int;
  mutable delivered_interp : int;
  mutable degraded_deliveries : int;
  mutable shed_deadline : int;
  mutable shed_quota : int;
  mutable shed_breaker : int;
  mutable shed_overload : int;
  mutable shed_unknown : int;
  mutable shed_no_meta : int;
  mutable rejected : int;
  mutable bad_frames : int;
  mutable plan_compiles : int;
  mutable plan_recompiles : int;
  mutable plan_upgrades : int;
  mutable singleflight_coalesced : int;
  mutable parity_mismatches : int;
  mutable breaker_trips : int;
  mutable breaker_recoveries : int;
}

let shed_total (s : stats) =
  s.shed_deadline + s.shed_quota + s.shed_breaker + s.shed_overload
  + s.shed_unknown + s.shed_no_meta

type gmetrics = {
  gm_on : bool;
  gm_reg : Obs.t;
  gm_meta_pushes : Obs.Counter.h;
  gm_admitted : Obs.Counter.h;
  gm_delivered : Obs.Counter.h;
  gm_degraded : Obs.Counter.h;
  gm_shed : Obs.Counter.h;
  gm_shed_deadline : Obs.Counter.h;
  gm_shed_quota : Obs.Counter.h;
  gm_shed_breaker : Obs.Counter.h;
  gm_shed_overload : Obs.Counter.h;
  gm_rejected : Obs.Counter.h;
  gm_compiles : Obs.Counter.h;
  gm_recompiles : Obs.Counter.h;
  gm_upgrades : Obs.Counter.h;
  gm_coalesced : Obs.Counter.h;
  gm_evictions : Obs.Counter.h;
  gm_parity_mismatches : Obs.Counter.h;
  gm_breaker_trips : Obs.Counter.h;
  gm_tenants : Obs.Gauge.h;
  gm_degrade_level : Obs.Gauge.h;
  gm_breakers_open : Obs.Gauge.h;
  gm_cache_entries : Obs.Gauge.h;
  gm_cache_cost : Obs.Gauge.h;
  gm_pending : Obs.Gauge.h;
  (* dimensional families (docs/OBSERVABILITY.md): which tenant is being
     admitted or shed, and which ladder rung deliveries run at.  Tenant
     families are capped; tenants beyond the cap share the reserved
     ["other"] series, so a mass-onboarding storm cannot grow the
     registry without bound. *)
  gm_tenant_admitted : Obs.Labeled.counter;
  gm_tenant_shed : Obs.Labeled.counter;
  gm_tenant_deadline_missed : Obs.Labeled.counter;
  gm_rung_fused : Obs.Counter.h;
  gm_rung_staged : Obs.Counter.h;
  gm_rung_interp : Obs.Counter.h;
}

(* Distinct per-tenant series kept before spilling to ["other"]. *)
let tenant_label_cardinality = 256

let shed_reason_label = function
  | Deadline -> "deadline"
  | Quota -> "quota"
  | Breaker -> "breaker"
  | Overload -> "overload"
  | Unknown_tenant -> "unknown_tenant"
  | No_meta -> "no_meta"

let make_gmetrics reg =
  let rung_delivered =
    Obs.Labeled.counter reg ~keys:[ "rung" ] "gateway.rung.delivered"
  in
  let rung_series r = Obs.Labeled.counter_series rung_delivered [ r ] in
  {
    gm_on = Obs.enabled reg;
    gm_reg = reg;
    gm_meta_pushes = Obs.Counter.make reg "gateway.meta_pushes";
    gm_admitted = Obs.Counter.make reg "gateway.admitted";
    gm_delivered = Obs.Counter.make reg "gateway.delivered";
    gm_degraded = Obs.Counter.make reg "gateway.degraded_deliveries";
    gm_shed = Obs.Counter.make reg "gateway.shed";
    gm_shed_deadline = Obs.Counter.make reg "gateway.shed_deadline";
    gm_shed_quota = Obs.Counter.make reg "gateway.shed_quota";
    gm_shed_breaker = Obs.Counter.make reg "gateway.shed_breaker";
    gm_shed_overload = Obs.Counter.make reg "gateway.shed_overload";
    gm_rejected = Obs.Counter.make reg "gateway.rejected";
    gm_compiles = Obs.Counter.make reg "gateway.plan_compiles";
    gm_recompiles = Obs.Counter.make reg "gateway.plan_recompiles";
    gm_upgrades = Obs.Counter.make reg "gateway.plan_upgrades";
    gm_coalesced = Obs.Counter.make reg "gateway.singleflight_coalesced";
    gm_evictions = Obs.Counter.make reg "gateway.plan_evictions";
    gm_parity_mismatches = Obs.Counter.make reg "gateway.parity_mismatches";
    gm_breaker_trips = Obs.Counter.make reg "gateway.breaker_trips";
    gm_tenants = Obs.Gauge.make reg "gateway.tenants";
    gm_degrade_level = Obs.Gauge.make reg "gateway.degrade_level";
    gm_breakers_open = Obs.Gauge.make reg "gateway.breakers_open";
    gm_cache_entries = Obs.Gauge.make reg "gateway.plan_cache_entries";
    gm_cache_cost = Obs.Gauge.make reg "gateway.plan_cache_cost";
    gm_pending = Obs.Gauge.make reg "gateway.pending_depth";
    gm_tenant_admitted =
      Obs.Labeled.counter reg ~cardinality:tenant_label_cardinality
        ~keys:[ "tenant" ] "gateway.tenant.admitted";
    gm_tenant_shed =
      (* tuples here are (tenant, reason): give the family headroom for
         several reasons per tracked tenant before spilling *)
      Obs.Labeled.counter reg ~cardinality:(4 * tenant_label_cardinality)
        ~keys:[ "tenant"; "reason" ] "gateway.tenant.shed";
    gm_tenant_deadline_missed =
      Obs.Labeled.counter reg ~cardinality:tenant_label_cardinality
        ~keys:[ "tenant" ] "gateway.tenant.deadline_missed";
    gm_rung_fused = rung_series "fused";
    gm_rung_staged = rung_series "staged";
    gm_rung_interp = rung_series "interp";
  }

(* --- plans ---------------------------------------------------------------- *)

(* The transform shape — what Algorithm 2 planning decided — is computed
   once per (tenant, fingerprint), synchronously; the wire-plan artifacts
   (fused morphers / staged decoders) are what the ladder modulates and
   what the simulated compile delay stands for. *)
type shape = {
  s_chain : (Value.t -> Value.t) option;  (* composed Ecode hops to the base *)
  s_conv : (Value.t -> Value.t) option;  (* structural conversion into target *)
  s_fusable : bool;  (* no Ecode step: eligible for a fused wire plan *)
}

(* Fused artifacts carry both the eager and the lazy-materialisation
   wire plans (LE, BE each); only the pair the config selects is ever
   forced, so a gateway without [lazy_ingress] never compiles lazy
   plans and vice versa. *)
type arts =
  | Fused_plans of {
      f_le : Codec.morpher Lazy.t;
      f_be : Codec.morpher Lazy.t;
      l_le : Codec.lmorpher Lazy.t;
      l_be : Codec.lmorpher Lazy.t;
    }
  | Staged_plans of Codec.decoder Lazy.t * Codec.decoder Lazy.t
  | Interp_only

let arts_level = function
  | Fused_plans _ -> 0
  | Staged_plans _ -> 1
  | Interp_only -> 2

type plan = {
  p_source : Ptype.record;
  p_target : Ptype.record;
  p_shape : shape;
  mutable p_arts : arts;
  mutable p_upgrading : bool;
}

(* What the cache holds: planning failures are cached too, so a format
   with no acceptable morph path costs one lookup per message, not one
   MaxMatch per message. *)
type cached =
  | Ready of plan
  | Refused of string

(* --- tenants -------------------------------------------------------------- *)

type bucket = {
  b_rate : float;
  b_burst : float;
  mutable b_tokens : float;
  mutable b_last : float;
}

let bucket_admit b ~now =
  b.b_tokens <- Float.min b.b_burst (b.b_tokens +. ((now -. b.b_last) *. b.b_rate));
  b.b_last <- now;
  if b.b_tokens >= 1. then begin
    b.b_tokens <- b.b_tokens -. 1.;
    true
  end
  else false

type tstate = {
  ts_id : int;
  mutable ts_target : Ptype.record option;
  ts_registry : (int, Meta.format_meta) Hashtbl.t;
  ts_breaker : Breaker.t;
  ts_bucket : bucket option;
  ts_compiled : (int, unit) Hashtbl.t;
      (* fingerprints that ever had a plan compiled: a later compile for
         one of these is a recompile (its plan was evicted) *)
  ts_m_admitted : Obs.Counter.h;
      (* this tenant's series of gateway.tenant.admitted, resolved once
         at onboarding so per-message admission stays handle-speed *)
}

(* --- the gateway ---------------------------------------------------------- *)

type pending = { pd_deadline_ns : int; pd_message : string }

type t = {
  config : config;
  net : Netsim.t;
  contact : Contact.t;
  m : gmetrics;
  tenants : (int, tstate) Hashtbl.t;
  cache : cached Plan_cache.t;
  gov : Governor.t;
  inflight : (int * int, pending Queue.t) Hashtbl.t;
  g_ctx : Ctx.t option;
  (* the creating context, kept for its per-domain arena: lazy-ingress
     deliveries draw pooled record skeletons from [Ctx.arena] and
     recycle them after the delivery handler returns *)
  g_cache : Codec.cache option;
  (* codec plan cache from the creating [Ctx.t]: fused/staged wire plans
     come from (and are shared through) it instead of being compiled
     privately per tenant; [None] keeps private per-plan compiles *)
  mutable pending_depth : int;
  mutable on_delivery : delivery -> unit;
  flight : Obs.Flight.recorder option;
  (* anomaly-burst detection for the flight recorder: sheds and cache
     evictions are counted in short windows of simulated time; crossing
     a threshold within one window triggers one incident capture *)
  mutable fl_shed_win_start : float;
  mutable fl_shed_win_n : int;
  mutable fl_evict_win_start : float;
  mutable fl_evict_win_n : int;
  stats : stats;
}

(* Burst windows: a trigger fires when this many sheds (or evictions)
   land within one window of simulated time. *)
let flight_burst_window_s = 0.05
let flight_shed_burst = 100
let flight_evict_burst = 32

let now_s t = Netsim.now t.net
let now_ns t = Netsim.now t.net *. 1e9

let fingerprint (meta : Meta.format_meta) : int = Meta.hash meta land max_int

let envelope ~tenant ~fingerprint ?(deadline_ns = 0) frame =
  Framing.Described { tenant; fingerprint; deadline_ns; frame }

let create ?(config = default_config) ?(metrics = Obs.null) ?ctx ?flight ~net
    contact (on_delivery : delivery -> unit) : t =
  if config.breaker_threshold < 1 then
    invalid_arg "Gateway.create: breaker_threshold must be >= 1";
  if config.pending_cap < 1 then
    invalid_arg "Gateway.create: pending_cap must be >= 1";
  if not (config.compile_s_per_unit >= 0.) then
    invalid_arg "Gateway.create: compile_s_per_unit must be >= 0";
  if config.admit_rate > 0. && not (config.admit_burst >= 1.) then
    invalid_arg "Gateway.create: admit_burst must be >= 1";
  let m = make_gmetrics metrics in
  let gov = Governor.create ~now:(Netsim.now net) config.governor in
  let t_ref = ref None in
  let cache =
    Plan_cache.create ~max_entries:config.max_plans
      ~max_cost:config.max_plan_cost ~tenant_quota:config.tenant_quota
      ~on_evict:(fun ~tenant:_ ~key:_ ->
        match !t_ref with
        | Some t ->
          Governor.note_eviction t.gov ~now:(now_s t);
          if t.m.gm_on then Obs.Counter.incr t.m.gm_evictions;
          (match t.flight with
           | Some fl ->
             let now = now_s t in
             if now -. t.fl_evict_win_start > flight_burst_window_s then begin
               t.fl_evict_win_start <- now;
               t.fl_evict_win_n <- 0
             end;
             t.fl_evict_win_n <- t.fl_evict_win_n + 1;
             if t.fl_evict_win_n = flight_evict_burst then
               Obs.Flight.trigger fl ~kind:"eviction_storm"
                 ~reason:
                   (Fmt.str "%d plan-cache evictions within %gs"
                      flight_evict_burst flight_burst_window_s)
           | None -> ())
        | None -> ())
      ()
  in
  let t =
    {
      config;
      net;
      contact;
      m;
      tenants = Hashtbl.create 256;
      cache;
      gov;
      inflight = Hashtbl.create 64;
      g_ctx = ctx;
      g_cache = Option.map Ctx.codecs ctx;
      pending_depth = 0;
      on_delivery;
      flight;
      fl_shed_win_start = neg_infinity;
      fl_shed_win_n = 0;
      fl_evict_win_start = neg_infinity;
      fl_evict_win_n = 0;
      stats =
        {
          meta_pushes = 0; onboarded = 0; admitted = 0; delivered = 0;
          delivered_fused = 0; delivered_staged = 0; delivered_interp = 0;
          degraded_deliveries = 0; shed_deadline = 0; shed_quota = 0;
          shed_breaker = 0; shed_overload = 0; shed_unknown = 0;
          shed_no_meta = 0; rejected = 0; bad_frames = 0; plan_compiles = 0;
          plan_recompiles = 0; plan_upgrades = 0; singleflight_coalesced = 0;
          parity_mismatches = 0; breaker_trips = 0; breaker_recoveries = 0;
        };
    }
  in
  t_ref := Some t;
  t

let contact t = t.contact
let stats t = t.stats
let cache_stats t = Plan_cache.stats t.cache
let set_handler t f = t.on_delivery <- f
let tenant_count t = Hashtbl.length t.tenants
let degrade_rung t = Governor.rung t.gov ~now:(now_s t)

let breaker_state t tenant =
  Option.map (fun ts -> Breaker.state ts.ts_breaker)
    (Hashtbl.find_opt t.tenants tenant)

let breakers_open t =
  Hashtbl.fold
    (fun _ ts acc ->
       if Breaker.state ts.ts_breaker <> Breaker.Closed then acc + 1 else acc)
    t.tenants 0

let new_tenant t id target =
  let ts =
    {
      ts_id = id;
      ts_target = target;
      ts_registry = Hashtbl.create 8;
      ts_breaker =
        Breaker.create ~threshold:t.config.breaker_threshold
          ?cooldown_s:t.config.breaker_cooldown_s
          ?on_trip:
            (match t.flight with
             | None -> None
             | Some fl ->
               Some
                 (fun b ->
                    Obs.Flight.trigger fl ~kind:"breaker_trip"
                      ~reason:
                        (Fmt.str "tenant %d breaker tripped open (trip #%d)"
                           id (Breaker.trips b))))
          ();
      ts_bucket =
        (if t.config.admit_rate > 0. then
           Some
             { b_rate = t.config.admit_rate; b_burst = t.config.admit_burst;
               b_tokens = t.config.admit_burst; b_last = Netsim.now t.net }
         else None);
      ts_compiled = Hashtbl.create 8;
      ts_m_admitted =
        Obs.Labeled.counter_series t.m.gm_tenant_admitted
          [ string_of_int id ];
    }
  in
  Hashtbl.replace t.tenants id ts;
  t.stats.onboarded <- t.stats.onboarded + 1;
  if t.m.gm_on then
    Obs.Gauge.set t.m.gm_tenants (float_of_int (Hashtbl.length t.tenants));
  ts

let add_tenant t ~id ?target () =
  if id < 0 then invalid_arg "Gateway.add_tenant: negative tenant id";
  match Hashtbl.find_opt t.tenants id with
  | Some ts -> (match target with Some _ -> ts.ts_target <- target | None -> ())
  | None -> ignore (new_tenant t id target : tstate)

let drop_tenant t id =
  match Hashtbl.find_opt t.tenants id with
  | None -> false
  | Some _ ->
    Hashtbl.remove t.tenants id;
    ignore (Plan_cache.drop_tenant t.cache id : int);
    if t.m.gm_on then
      Obs.Gauge.set t.m.gm_tenants (float_of_int (Hashtbl.length t.tenants));
    true

(* --- planning -------------------------------------------------------------- *)

(* The gateway's slice of Algorithm 2, with the candidate set pinned to
   the tenant's single target format: direct structural match, else the
   shortest retro-transformation chain whose endpoint matches. *)
let build_shape ~thresholds (meta : Meta.format_meta) (target : Ptype.record) :
  (shape, string) result =
  let fm = meta.Meta.body in
  let direct_shape f2 =
    if Ptype.equal_record fm f2 then
      Some { s_chain = None; s_conv = None; s_fusable = true }
    else if Maxmatch.qualifies thresholds (Maxmatch.evaluate_pair fm f2) then
      Some
        { s_chain = None;
          s_conv = Some (Convert.compile ~from_:fm ~into:f2); s_fusable = true }
    else None
  in
  match direct_shape target with
  | Some s -> Ok s
  | None ->
    (* breadth-first over the shipped transformation graph, shortest spec
       path per reachable format (as in Morph.Receiver) *)
    let visited = ref [ fm ] in
    let seen f = List.exists (Ptype.equal_record f) !visited in
    let rec bfs acc frontier =
      match frontier with
      | [] -> List.rev acc
      | (f, path) :: rest ->
        let extensions =
          List.filter_map
            (fun (x : Meta.xform_spec) ->
               let src = Option.value x.source ~default:fm in
               if Ptype.equal_record src f && not (seen x.target) then begin
                 visited := x.target :: !visited;
                 Some (x.target, path @ [ x ])
               end
               else None)
            meta.Meta.xforms
        in
        bfs ((f, path) :: acc) (rest @ extensions)
    in
    let reachable = bfs [] [ (fm, []) ] in
    let matched =
      List.find_map
        (fun (f, path) ->
           if path = [] then None
           else if
             Ptype.equal_record f target
             || Maxmatch.qualifies thresholds (Maxmatch.evaluate_pair f target)
           then Some (f, path)
           else None)
        reachable
    in
    (match matched with
     | None ->
       Error
         (Fmt.str "no acceptable match for format %S against the tenant target %S"
            fm.Ptype.rname target.Ptype.rname)
     | Some (f, specs) ->
       let rec compile_chain source acc = function
         | [] -> Ok acc
         | (spec : Meta.xform_spec) :: rest ->
           (match Xform.compile ~engine:Xform.Compiled ~source spec with
            | Error e -> Error (Err.to_string e)
            | Ok compiled ->
              let step = compiled.Xform.run in
              compile_chain spec.target (fun v -> step (acc v)) rest)
       in
       (match compile_chain fm (fun v -> v) specs with
        | Error e -> Error e
        | Ok chain ->
          let conv =
            if Ptype.equal_record f target then None
            else Some (Convert.compile ~from_:f ~into:target)
          in
          Ok
            { s_chain = Some chain; s_conv = conv; s_fusable = false }))

(* Deterministic compile-cost units per ladder level ([Ptype.weight], not
   wall time): a fused plan compiles reader plans over both formats, a
   staged plan only the source decoder, interp compiles nothing. *)
let cost_of_level ~(shape : shape) ~(source : Ptype.record)
    ~(target : Ptype.record) level : float =
  if level <= 0 && shape.s_fusable then
    float_of_int (Ptype.weight source + Ptype.weight target)
  else if level <= 1 then float_of_int (Ptype.weight source)
  else 1.

let build_arts ?cache ~(shape : shape) ~(source : Ptype.record)
    ~(target : Ptype.record) level : arts =
  if level <= 0 && shape.s_fusable then
    (match cache with
     | Some c ->
       Fused_plans
         {
           f_le = lazy (Codec.morpher_in c ~endian:Codec.Little ~from_:source ~into:target);
           f_be = lazy (Codec.morpher_in c ~endian:Codec.Big ~from_:source ~into:target);
           l_le = lazy (Codec.lmorpher_in c ~endian:Codec.Little ~from_:source ~into:target);
           l_be = lazy (Codec.lmorpher_in c ~endian:Codec.Big ~from_:source ~into:target);
         }
     | None ->
       Fused_plans
         {
           f_le = lazy (Codec.compile_morph ~endian:Codec.Little ~from_:source ~into:target);
           f_be = lazy (Codec.compile_morph ~endian:Codec.Big ~from_:source ~into:target);
           l_le = lazy (Codec.compile_morph_lazy ~endian:Codec.Little ~from_:source ~into:target);
           l_be = lazy (Codec.compile_morph_lazy ~endian:Codec.Big ~from_:source ~into:target);
         })
  else if level <= 1 then
    (match cache with
     | Some c ->
       Staged_plans
         ( lazy (Codec.decoder_for ~cache:c ~endian:Codec.Little source),
           lazy (Codec.decoder_for ~cache:c ~endian:Codec.Big source) )
     | None ->
       Staged_plans
         ( lazy (Codec.compile_decode ~endian:Codec.Little source),
           lazy (Codec.compile_decode ~endian:Codec.Big source) ))
  else Interp_only

(* The rung at which *new* plan work compiles right now. *)
let compile_rung t =
  match t.config.mode_override with
  | Some r -> r
  | None ->
    let r = Governor.rung t.gov ~now:(now_s t) in
    if t.m.gm_on then
      Obs.Gauge.set t.m.gm_degrade_level (float_of_int (Governor.rung_level r));
    r

(* --- delivery -------------------------------------------------------------- *)

let apply_shape (shape : shape) v =
  let v = match shape.s_chain with Some f -> f v | None -> v in
  match shape.s_conv with Some c -> c v | None -> v

let pick (le, be) = function Codec.Little -> Lazy.force le | Codec.Big -> Lazy.force be

(* The arena lazy-ingress deliveries draw pooled record skeletons from:
   the creating context's per-domain arena (the gateway runs on one
   domain, so this is effectively gateway-private). *)
let gateway_arena t =
  Ctx.arena (Option.value t.g_ctx ~default:Ctx.default)

(* Decode + transform one message under the plan's compiled artifacts.
   Returns the target-format value and the rung this delivery ran at.
   With [lazy_ingress] the fused rung runs the lazy-materialisation plan
   over a slice view of the message, drawing record skeletons from the
   gateway arena; the caller recycles the arena once the delivery
   handler has returned (the value's pooled cells must not be read after
   the next lazy delivery begins). *)
let run_plan t (plan : plan) ~endian (message : string) : Value.t * rung =
  match plan.p_arts with
  | Fused_plans f ->
    if t.config.lazy_ingress then
      let lm =
        match endian with
        | Codec.Little -> Lazy.force f.l_le
        | Codec.Big -> Lazy.force f.l_be
      in
      ( Codec.lmorph_payload lm ~arena:(gateway_arena t)
          ~pos:Codec.header_size (Slice.of_string message),
        Fused )
    else
      ( Codec.morph_payload (pick (f.f_le, f.f_be) endian)
          ~pos:Codec.header_size message,
        Fused )
  | Staged_plans (le, be) ->
    let v = Codec.decode_payload (pick (le, be) endian) ~pos:Codec.header_size message in
    (apply_shape plan.p_shape v, Staged)
  | Interp_only ->
    let v =
      Codec.Interp.decode_payload ~endian ~pos:Codec.header_size plan.p_source
        message
    in
    (apply_shape plan.p_shape v, Interp)

(* The interpretive reference outcome for the same message — what every
   rung must agree with, byte-for-byte under the target format. *)
let reference_bytes (plan : plan) ~endian (message : string) : string =
  let v =
    Codec.Interp.decode_payload ~endian ~pos:Codec.header_size plan.p_source
      message
  in
  Codec.Interp.encode_payload ~endian:Codec.Little plan.p_target
    (apply_shape plan.p_shape v)

let record_failure t (ts : tstate) msg : outcome =
  t.stats.rejected <- t.stats.rejected + 1;
  if t.m.gm_on then Obs.Counter.incr t.m.gm_rejected;
  if Breaker.record_failure ts.ts_breaker ~now:(now_s t) then begin
    t.stats.breaker_trips <- t.stats.breaker_trips + 1;
    if t.m.gm_on then begin
      Obs.Counter.incr t.m.gm_breaker_trips;
      Obs.Gauge.set t.m.gm_breakers_open (float_of_int (breakers_open t))
    end
  end;
  Rejected msg

(* Upgrade a degraded plan's artifacts once pressure is off: scheduled
   like any compile (charged, simulated delay), but the plan keeps
   delivering at its current rung meanwhile. *)
let maybe_upgrade t (plan : plan) =
  if t.config.mode_override = None && not plan.p_upgrading then begin
    let cur = arts_level plan.p_arts in
    let best = if plan.p_shape.s_fusable then 0 else 1 in
    if cur > best then
      match Governor.rung t.gov ~now:(now_s t) with
      | Shed | Interp -> ()
      | (Fused | Staged) as r ->
        let want = Int.max best (Governor.rung_level r) in
        if want < cur then begin
          plan.p_upgrading <- true;
          let cost =
            cost_of_level ~shape:plan.p_shape ~source:plan.p_source
              ~target:plan.p_target want
          in
          Governor.charge t.gov ~now:(now_s t) cost;
          t.stats.plan_upgrades <- t.stats.plan_upgrades + 1;
          if t.m.gm_on then Obs.Counter.incr t.m.gm_upgrades;
          Netsim.after t.net (t.config.compile_s_per_unit *. cost) (fun () ->
              plan.p_upgrading <- false;
              if arts_level plan.p_arts > want then
                plan.p_arts <-
                  build_arts ?cache:t.g_cache ~shape:plan.p_shape
                    ~source:plan.p_source ~target:plan.p_target want)
        end
  end

let deliver_now t (ts : tstate) (plan : plan) ~fingerprint:fp ~deadline_ns
    (message : string) : outcome =
  match
    let hdr = Codec.read_header message in
    let endian = hdr.Codec.endian in
    let v, rung = run_plan t plan ~endian message in
    (v, rung, endian)
  with
  | v, rung, endian ->
    let best = if plan.p_shape.s_fusable then 0 else 1 in
    let degraded = Governor.rung_level rung > best in
    if t.config.parity then begin
      let agree =
        match
          ( Codec.Interp.encode_payload ~endian:Codec.Little plan.p_target v,
            reference_bytes plan ~endian message )
        with
        | got, want -> String.equal got want
        | exception _ -> false
      in
      if not agree then begin
        t.stats.parity_mismatches <- t.stats.parity_mismatches + 1;
        if t.m.gm_on then Obs.Counter.incr t.m.gm_parity_mismatches
      end
    end;
    if Breaker.record_success ts.ts_breaker then begin
      t.stats.breaker_recoveries <- t.stats.breaker_recoveries + 1;
      if t.m.gm_on then
        Obs.Gauge.set t.m.gm_breakers_open (float_of_int (breakers_open t))
    end;
    t.stats.delivered <- t.stats.delivered + 1;
    (match rung with
     | Fused ->
       t.stats.delivered_fused <- t.stats.delivered_fused + 1;
       Obs.Counter.incr t.m.gm_rung_fused
     | Staged ->
       t.stats.delivered_staged <- t.stats.delivered_staged + 1;
       Obs.Counter.incr t.m.gm_rung_staged
     | Interp | Shed ->
       t.stats.delivered_interp <- t.stats.delivered_interp + 1;
       Obs.Counter.incr t.m.gm_rung_interp);
    if degraded then begin
      t.stats.degraded_deliveries <- t.stats.degraded_deliveries + 1;
      if t.m.gm_on then Obs.Counter.incr t.m.gm_degraded
    end;
    if t.m.gm_on then Obs.Counter.incr t.m.gm_delivered;
    let d =
      { tenant = ts.ts_id; fingerprint = fp; deadline_ns; rung; degraded;
        value = v }
    in
    if t.m.gm_on then
      Obs.Trace.with_span
        ~attrs:
          [ ("gateway.tenant", string_of_int ts.ts_id);
            ("gateway.degraded",
             if degraded then Governor.rung_to_string rung else "no") ]
        t.m.gm_reg "gateway.deliver"
        (fun () -> t.on_delivery d)
    else t.on_delivery d;
    (* lazy fused deliveries drew pooled skeletons from the arena; the
       handler has returned, so the cells are dead — recycle them for
       the next delivery.  (Rejections skip this: an un-recycled arena
       just allocates fresh on its next use.) *)
    if t.config.lazy_ingress && rung = Fused then
      Arena.recycle (gateway_arena t);
    maybe_upgrade t plan;
    Delivered rung
  | exception Codec.Decode_error msg ->
    record_failure t ts (Fmt.str "decode failed: %s" msg)
  | exception Value.Type_error msg ->
    record_failure t ts (Fmt.str "transformation failed: %s" msg)
  | exception Ecode.Compile.Runtime_error msg ->
    record_failure t ts (Fmt.str "transformation failed: %s" msg)
  | exception Ecode.Interp.Runtime_error msg ->
    record_failure t ts (Fmt.str "transformation failed: %s" msg)

let shed t ~tenant (reason : shed_reason) : outcome =
  (match reason with
   | Deadline -> t.stats.shed_deadline <- t.stats.shed_deadline + 1
   | Quota -> t.stats.shed_quota <- t.stats.shed_quota + 1
   | Breaker -> t.stats.shed_breaker <- t.stats.shed_breaker + 1
   | Overload -> t.stats.shed_overload <- t.stats.shed_overload + 1
   | Unknown_tenant -> t.stats.shed_unknown <- t.stats.shed_unknown + 1
   | No_meta -> t.stats.shed_no_meta <- t.stats.shed_no_meta + 1);
  if t.m.gm_on then begin
    Obs.Counter.incr t.m.gm_shed;
    (match reason with
     | Deadline -> Obs.Counter.incr t.m.gm_shed_deadline
     | Quota -> Obs.Counter.incr t.m.gm_shed_quota
     | Breaker -> Obs.Counter.incr t.m.gm_shed_breaker
     | Overload -> Obs.Counter.incr t.m.gm_shed_overload
     | Unknown_tenant | No_meta -> ());
    let tid = string_of_int tenant in
    Obs.Labeled.incr t.m.gm_tenant_shed [ tid; shed_reason_label reason ];
    if reason = Deadline then
      Obs.Labeled.incr t.m.gm_tenant_deadline_missed [ tid ]
  end;
  (match t.flight with
   | Some fl ->
     let now = now_s t in
     if now -. t.fl_shed_win_start > flight_burst_window_s then begin
       t.fl_shed_win_start <- now;
       t.fl_shed_win_n <- 0
     end;
     t.fl_shed_win_n <- t.fl_shed_win_n + 1;
     if t.fl_shed_win_n = flight_shed_burst then
       Obs.Flight.trigger fl ~kind:"shed_burst"
         ~reason:
           (Fmt.str "%d messages shed within %gs (last: tenant %d, %s)"
              flight_shed_burst flight_burst_window_s tenant
              (shed_reason_label reason))
   | None -> ());
  Shed reason

let set_cache_gauges t =
  if t.m.gm_on then begin
    Obs.Gauge.set t.m.gm_cache_entries (float_of_int (Plan_cache.size t.cache));
    Obs.Gauge.set t.m.gm_cache_cost (Plan_cache.cost t.cache)
  end

(* Singleflight compile for (tenant, fingerprint): the first message
   charges the governor, starts the simulated compile and parks; every
   further message while it is in flight parks behind it (coalesced).
   Completion caches the plan — or the planning refusal — and drains the
   parked queue, re-checking each message's deadline. *)
let start_compile t (ts : tstate) ~fingerprint:fp (meta : Meta.format_meta)
    (target : Ptype.record) ~deadline_ns (message : string) : outcome =
  let key = (ts.ts_id, fp) in
  let q = Queue.create () in
  Queue.push { pd_deadline_ns = deadline_ns; pd_message = message } q;
  Hashtbl.replace t.inflight key q;
  t.pending_depth <- t.pending_depth + 1;
  (* maintained as deltas (not [set]) so per-shard pending depths sum
     correctly when registries merge at scrape time *)
  if t.m.gm_on then Obs.Gauge.add t.m.gm_pending 1.;
  match build_shape ~thresholds:t.config.thresholds meta target with
  | Error msg ->
    (* planning refusals are cached (cost 1) and immediate: there is no
       artifact to compile, so nothing to wait for *)
    Hashtbl.remove t.inflight key;
    t.pending_depth <- t.pending_depth - 1;
    if t.m.gm_on then Obs.Gauge.add t.m.gm_pending (-1.);
    Plan_cache.add t.cache ~tenant:ts.ts_id ~key:fp ~cost:1. (Refused msg);
    set_cache_gauges t;
    record_failure t ts msg
  | Ok shape ->
    let level = Governor.rung_level (compile_rung t) in
    let source = meta.Meta.body in
    let cost = cost_of_level ~shape ~source ~target level in
    Governor.charge t.gov ~now:(now_s t) cost;
    t.stats.plan_compiles <- t.stats.plan_compiles + 1;
    if t.m.gm_on then Obs.Counter.incr t.m.gm_compiles;
    if Hashtbl.mem ts.ts_compiled fp then begin
      t.stats.plan_recompiles <- t.stats.plan_recompiles + 1;
      if t.m.gm_on then Obs.Counter.incr t.m.gm_recompiles
    end
    else Hashtbl.replace ts.ts_compiled fp ();
    Netsim.after t.net (t.config.compile_s_per_unit *. cost) (fun () ->
        Hashtbl.remove t.inflight key;
        let plan =
          { p_source = source; p_target = target; p_shape = shape;
            p_arts = build_arts ?cache:t.g_cache ~shape ~source ~target level;
            p_upgrading = false }
        in
        Plan_cache.add t.cache ~tenant:ts.ts_id ~key:fp ~cost (Ready plan);
        set_cache_gauges t;
        if t.m.gm_on then
          Obs.Gauge.add t.m.gm_pending (-.float_of_int (Queue.length q));
        Queue.iter
          (fun { pd_deadline_ns; pd_message } ->
             t.pending_depth <- t.pending_depth - 1;
             if pd_deadline_ns > 0 && now_ns t > float_of_int pd_deadline_ns
             then ignore (shed t ~tenant:ts.ts_id Deadline : outcome)
             else
               ignore
                 (deliver_now t ts plan ~fingerprint:fp
                    ~deadline_ns:pd_deadline_ns pd_message
                  : outcome))
          q);
    Parked

let handle_data t (ts : tstate) ~fingerprint:fp ~deadline_ns (message : string) :
  outcome =
  t.stats.admitted <- t.stats.admitted + 1;
  if t.m.gm_on then begin
    Obs.Counter.incr t.m.gm_admitted;
    Obs.Counter.incr ts.ts_m_admitted
  end;
  match Plan_cache.find t.cache ~tenant:ts.ts_id ~key:fp with
  | Some (Ready plan) -> deliver_now t ts plan ~fingerprint:fp ~deadline_ns message
  | Some (Refused msg) -> record_failure t ts msg
  | None ->
    (match Hashtbl.find_opt t.inflight (ts.ts_id, fp) with
     | Some q ->
       (* singleflight: a compile for this (tenant, format) is already in
          flight; park behind it rather than compiling again *)
       if Queue.length q >= t.config.pending_cap then
         shed t ~tenant:ts.ts_id Overload
       else begin
         Queue.push { pd_deadline_ns = deadline_ns; pd_message = message } q;
         t.pending_depth <- t.pending_depth + 1;
         t.stats.singleflight_coalesced <- t.stats.singleflight_coalesced + 1;
         if t.m.gm_on then begin
           Obs.Counter.incr t.m.gm_coalesced;
           Obs.Gauge.add t.m.gm_pending 1.
         end;
         Parked
       end
     | None ->
       (match Hashtbl.find_opt ts.ts_registry fp with
        | None -> shed t ~tenant:ts.ts_id No_meta
        | Some meta ->
          (match ts.ts_target with
           | None -> shed t ~tenant:ts.ts_id No_meta
           | Some target ->
             if compile_rung t = Shed then shed t ~tenant:ts.ts_id Overload
             else start_compile t ts ~fingerprint:fp meta target ~deadline_ns message)))

let handle_meta t ~tenant ~fingerprint:fp (encoded : string) : outcome =
  match Meta.decode encoded with
  | Error e ->
    t.stats.bad_frames <- t.stats.bad_frames + 1;
    Ignored (Fmt.str "bad meta push: %s" (Err.to_string e))
  | Ok meta ->
    let want = fingerprint meta in
    if fp <> 0 && fp <> want then begin
      t.stats.bad_frames <- t.stats.bad_frames + 1;
      Ignored (Fmt.str "meta push fingerprint %d does not match content %d" fp want)
    end
    else begin
      let ts =
        match Hashtbl.find_opt t.tenants tenant with
        | Some ts -> ts
        | None ->
          (* self-describing onboarding: the first push creates the
             tenant, and its lineage base becomes the delivery target *)
          new_tenant t tenant None
      in
      Hashtbl.replace ts.ts_registry want meta;
      (* the first pushed format pins the tenant's target: senders push
         their base (v0) before evolving, so deliveries morph back to it *)
      (match ts.ts_target with
       | None -> ts.ts_target <- Some meta.Meta.body
       | Some _ -> ());
      t.stats.meta_pushes <- t.stats.meta_pushes + 1;
      if t.m.gm_on then Obs.Counter.incr t.m.gm_meta_pushes;
      Onboarded
    end

let handle_described t ~tenant ~fingerprint:fp ~deadline_ns
    (frame : Framing.frame) : outcome =
  match frame with
  | Framing.Meta { meta; _ } -> handle_meta t ~tenant ~fingerprint:fp meta
  | Framing.Data { message; _ } ->
    (match Hashtbl.find_opt t.tenants tenant with
     | None -> shed t ~tenant Unknown_tenant
     | Some ts ->
       (* admission control, strictly before any decode work: deadline
          first (expired work helps nobody), then the circuit, then the
          tenant's rate quota *)
       if deadline_ns > 0 && now_ns t > float_of_int deadline_ns then
         shed t ~tenant Deadline
       else if not (Breaker.admit ts.ts_breaker ~now:(now_s t)) then
         shed t ~tenant Breaker
       else if
         match ts.ts_bucket with
         | Some b -> not (bucket_admit b ~now:(now_s t))
         | None -> false
       then shed t ~tenant Quota
       else handle_data t ts ~fingerprint:fp ~deadline_ns message)
  | Framing.Meta_request _ | Framing.Ack _ | Framing.Reliable _
  | Framing.Traced _ | Framing.Described _ ->
    t.stats.bad_frames <- t.stats.bad_frames + 1;
    Ignored "described envelope around a frame the gateway does not terminate"

let handle_frame t (frame : Framing.frame) : outcome =
  match frame with
  | Framing.Described { tenant; fingerprint = fp; deadline_ns; frame } ->
    handle_described t ~tenant ~fingerprint:fp ~deadline_ns frame
  | Framing.Traced
      { trace_id; parent_span;
        frame = Framing.Described { tenant; fingerprint = fp; deadline_ns; frame } } ->
    if t.m.gm_on then
      Obs.Trace.with_span
        ~ctx:{ Obs.Trace.trace_id; span_id = parent_span }
        t.m.gm_reg "gateway.ingress"
        (fun () -> handle_described t ~tenant ~fingerprint:fp ~deadline_ns frame)
    else handle_described t ~tenant ~fingerprint:fp ~deadline_ns frame
  | _ ->
    t.stats.bad_frames <- t.stats.bad_frames + 1;
    Ignored "not a described frame"

(* Attach the gateway to the network.  Wire garbage never raises. *)
let attach t =
  Netsim.add_node t.net t.contact (fun ~src:_ payload ->
      match Framing.decode payload with
      | Ok frame -> ignore (handle_frame t frame : outcome)
      | Error _ -> t.stats.bad_frames <- t.stats.bad_frames + 1)

let pending_depth t = t.pending_depth
